//===----------------------------------------------------------------------===//
///
/// \file
/// Exploded-supergraph tabulation in the functional (summary-based)
/// style of Sharir & Pnueli as specialized by IFDS: path edges
/// ⟨(sp, d1) → (n, d2)⟩ record that fact d2 holds at node n of a
/// procedure whenever fact d1 holds at its entry; procedure summaries
/// are path edges ending at the exit node, applied at every call site
/// of the procedure.
///
/// The solver tabulates *every* entry fact of every called procedure
/// (the functional approach: summaries are total relations over entry
/// facts), because conservative problems may consult a summary entry
/// fact at a call site unconditionally even when no caller can feed it
/// — see Problem::flowSummary. Which entry facts are actually feedable
/// is tracked separately: flowCall defines the *genuine* feeding
/// relation, and a post-solve fixpoint marks (procedure, entry fact)
/// pairs reachable through genuine feeds from the program entry.
/// Verdict queries (reached) consult genuine path edges only; summary
/// application during the solve is uniform.
///
/// Every path edge carries a shortest-distance and a justification
/// (predecessor path edge, CFG edge, and for summary steps the callee
/// summary path edge), so a shortest interprocedurally-valid witness
/// path can be reconstructed for any reached exploded node — see
/// ifds/Witness.h.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_IFDS_SOLVER_H
#define CANVAS_IFDS_SOLVER_H

#include "ifds/Problem.h"
#include "support/Budget.h"
#include "support/Interner.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace canvas {
namespace ifds {

class Solver {
public:
  /// How a path edge was last (best) derived — the predecessor link of
  /// witness reconstruction.
  enum class Via {
    Seed,         ///< ⟨(sp,d)→(sp,d)⟩, distance 0.
    Normal,       ///< Prev + one non-call CFG edge (flowNormal).
    CallToReturn, ///< Prev + one call edge, bypassing the callee.
    Summary,      ///< Prev at the call node + a callee summary
                  ///< (CalleePathEdge), crossing call and return.
  };

  struct PathEdge {
    int Proc = -1;
    int EntryFact = -1; ///< d1 at the procedure entry.
    int Node = -1;
    int Fact = -1;      ///< d2 at Node.
    /// Length of the shortest known same-level realization: CFG edges
    /// traversed, counting a summarized call as (2 + callee distance)
    /// for the call and return crossings.
    long Dist = 0;
    Via How = Via::Seed;
    int Prev = -1;           ///< Predecessor path edge id, -1 for seeds.
    int CFGEdge = -1;        ///< CFG edge justifying the last step.
    int CalleePathEdge = -1; ///< Callee summary edge for Via::Summary.
  };

  /// One genuine feed of a callee entry fact: the caller path edge
  /// whose fact at the call node seeded it (per Problem::flowCall),
  /// and the call edge.
  struct FactFeed {
    int CallerPathEdge = -1;
    int CFGEdge = -1;
  };

  struct Stats {
    size_t ExplodedNodes = 0; ///< Distinct (proc, node, fact) reached.
    size_t PathEdges = 0;
    size_t Summaries = 0;     ///< Distinct summary (entry, exit) pairs.
    unsigned Visits = 0;      ///< Worklist pops.
  };

  explicit Solver(const Problem &Prob);

  /// Runs the tabulation to fixpoint. \p Cancel, when given, is ticked
  /// once per worklist pop and informed of the path-edge population
  /// (cooperative budget enforcement; see support/Budget.h).
  void solve(support::CancelToken *Cancel = nullptr);

  /// True when some genuine path edge reaches (P, Node, Fact) — i.e.
  /// fact holds at the node along some call/return-matched path from
  /// the program entry.
  bool reached(int P, int Node, int Fact) const;

  /// True when the entry fact (P, Fact) is genuinely feedable from the
  /// program entry (the EntryMay1 relation of the functional engine).
  bool genuineEntry(int P, int Fact) const;

  const Problem &problem() const { return Prob; }
  const std::vector<PathEdge> &pathEdges() const { return Edges; }
  /// Genuine feeds of callee entry fact (P, Fact); empty when none.
  const std::vector<FactFeed> &feedsOf(int P, int Fact) const;
  /// Path edge id for (P, EntryFact, Node, Fact), or -1.
  int findPathEdge(int P, int EntryFact, int Node, int Fact) const;
  const Stats &stats() const { return St; }

private:
  struct ProcState {
    std::vector<int> Rpo;                ///< Node -> priority.
    std::vector<std::vector<int>> OutEdges;
    bool Activated = false;
    /// Summary path edges, keyed (entry fact, exit fact) -> id.
    std::map<std::pair<int, int>, int> Summaries;
    /// Caller path edges parked at call edges into this procedure.
    std::vector<std::pair<int, int>> Callers; ///< (path edge, CFG edge).
    std::unordered_set<uint64_t> CallersSeen; ///< Packed (edge, CFG edge).
    /// Genuine feeds per entry fact.
    std::vector<std::vector<FactFeed>> Feeds;
    std::vector<std::unordered_set<uint64_t>> FeedsSeen;
  };

  void activate(int P);
  int propagate(int P, int EntryFact, int Node, int Fact, long Dist, Via How,
                int Prev, int CFGEdge, int CalleePathEdge);
  void process(int Id);
  void applySummary(int CallerPE, int CFGEdge, int SummaryPE);
  void computeGenuine();

  /// Exploded-node keys pack into a word-hashed key (the tabulation's
  /// hottest lookup; see DESIGN.md "Arena / flat-structure memory
  /// architecture").
  struct KeyHash {
    size_t operator()(const std::array<int, 4> &K) const {
      uint64_t H = support::hashMix(
          (static_cast<uint64_t>(static_cast<uint32_t>(K[0])) << 32) |
          static_cast<uint32_t>(K[1]));
      return support::hashCombine(
          H, support::hashMix(
                 (static_cast<uint64_t>(static_cast<uint32_t>(K[2])) << 32) |
                 static_cast<uint32_t>(K[3])));
    }
  };
  static uint64_t packPair(int A, int B) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(A)) << 32) |
           static_cast<uint32_t>(B);
  }

  const Problem &Prob;
  std::vector<ProcState> Procs;
  std::vector<PathEdge> Edges;
  /// (Proc, EntryFact, Node, Fact) -> path edge id. Never iterated, so
  /// the unordered map cannot perturb processing order.
  std::unordered_map<std::array<int, 4>, int, KeyHash> Index;
  /// Worklist keyed by (RPO priority, id): processes nodes in roughly
  /// topological order, converging in few passes on reducible CFGs.
  std::set<std::pair<long, int>> Worklist;
  /// Genuine (proc, entry fact) pairs, packed, post-solve.
  std::unordered_set<uint64_t> Genuine;
  /// Genuine reachability of (Node, Fact) per procedure, one bit per
  /// exploded node at index Node * numFacts + Fact.
  std::vector<std::vector<uint64_t>> ReachedG;
  Stats St;
  bool Solved = false;
};

} // namespace ifds
} // namespace canvas

#endif // CANVAS_IFDS_SOLVER_H
