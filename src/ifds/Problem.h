//===----------------------------------------------------------------------===//
///
/// \file
/// The IFDS problem interface (Reps, Horwitz & Sagiv, POPL '95): an
/// interprocedural dataflow problem whose domain is a finite fact set
/// per procedure and whose transfer functions distribute over union, so
/// the meet-over-all-valid-paths solution is reachability in the
/// *exploded supergraph* — nodes are (program point, fact) pairs, and a
/// fact holds at a point iff some call/return-matched path reaches it
/// from (entry, Lambda).
///
/// Facts are small integers local to each procedure; fact 0 is Lambda,
/// the unconditional "reachable" fact that seeds the analysis. Flow
/// functions are given in their exploded-edge form: for an input fact d
/// at the edge source, enumerate the facts that hold after the edge.
///
/// One deliberate extension over textbook IFDS: return-flow composition
/// is delegated to the problem via flowSummary, which sees the caller
/// fact, the callee entry fact, and the callee exit fact *together*.
/// Problems whose call/return translation must stay correlated across
/// the callee (here: ghost-variable tuple assignments, which bind
/// caller objects to callee ghosts consistently at entry and exit) are
/// inexpressible as independent call/return-site flow functions without
/// losing precision; the combined hook keeps the solver generic and the
/// translation exact.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_IFDS_PROBLEM_H
#define CANVAS_IFDS_PROBLEM_H

#include <vector>

namespace canvas {
namespace ifds {

/// Fact 0 in every procedure: holds unconditionally at entry, killed by
/// nothing; its reachability at a node is plain control-flow
/// reachability along valid paths.
constexpr int LambdaFact = 0;

/// The control-flow skeleton of one procedure as the solver sees it:
/// integer nodes, directed edges, and for call edges the callee
/// procedure index.
struct ProcView {
  struct Edge {
    int From = 0;
    int To = 0;
    /// Callee procedure index for call edges, -1 otherwise. A call edge
    /// with Callee == -1 is an opaque call: the solver treats it as a
    /// normal edge (flowNormal).
    int Callee = -1;
  };

  int Entry = 0;
  int Exit = 0;
  int NumNodes = 0;
  std::vector<Edge> Edges;
};

/// An IFDS problem instance. Facts are dense integers per procedure
/// ([0, numFacts(P))), with fact 0 reserved for Lambda.
class Problem {
public:
  virtual ~Problem();

  virtual int numProcs() const = 0;
  virtual const ProcView &proc(int P) const = 0;
  /// The procedure whose entry seeds the analysis.
  virtual int entryProc() const = 0;
  virtual int numFacts(int P) const = 0;

  /// Facts holding at the entry of the entry procedure, Lambda
  /// included. (The entry method's component variables are
  /// unconstrained, so problems typically seed every fact.)
  virtual void initialFacts(std::vector<int> &Out) const = 0;

  /// Exploded flow across a non-call edge: facts holding after \p Edge
  /// of procedure \p P given input fact \p Fact holds before it.
  virtual void flowNormal(int P, int Edge, int Fact,
                          std::vector<int> &Out) const = 0;

  /// Callee entry facts seeded by input fact \p Fact at call edge
  /// \p Edge (the call-flow function). Lambda must map to Lambda.
  virtual void flowCall(int P, int Edge, int Fact,
                        std::vector<int> &Out) const = 0;

  /// Facts that bypass the callee (locals not passed, and Lambda).
  virtual void flowCallToReturn(int P, int Edge, int Fact,
                                std::vector<int> &Out) const = 0;

  /// Return-flow composition: facts holding after call edge \p Edge
  /// given that caller fact \p Fact feeds callee entry fact
  /// \p CalleeEntryFact (per flowCall) and the callee's exit reaches
  /// \p CalleeExitFact from that entry fact. See the file comment for
  /// why entry and exit are presented together.
  virtual void flowSummary(int P, int Edge, int Fact, int CalleeEntryFact,
                           int CalleeExitFact,
                           std::vector<int> &Out) const = 0;
};

} // namespace ifds
} // namespace canvas

#endif // CANVAS_IFDS_PROBLEM_H
