//===----------------------------------------------------------------------===//
///
/// \file
/// Shortest-witness reconstruction over a solved exploded supergraph:
/// for any genuinely reached exploded node (procedure, node, fact),
/// recover a shortest call/return-matched path from the program entry
/// that establishes the fact — the CFL-reachability certificate of the
/// IFDS answer, efficiently checkable by replaying it.
///
/// A witness has two parts. The *prefix* is the chain of still-pending
/// calls from the program entry down to the procedure's entry together
/// with the entry fact assumed there, reconstructed from the genuine
/// feed records of the solver. The *same-level* part realizes the path
/// edge inside the procedure by following justification links; a
/// summary step expands recursively into a Call step, the callee's own
/// same-level realization, and a Return step.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_IFDS_WITNESS_H
#define CANVAS_IFDS_WITNESS_H

#include "ifds/Solver.h"

#include <map>
#include <vector>

namespace canvas {
namespace ifds {

/// One step of a reconstructed witness path.
struct TraceStep {
  enum class Kind {
    Step,   ///< A non-call CFG edge (or a call crossed via
            ///< call-to-return flow, without descending).
    Call,   ///< Descend into the callee of a call edge.
    Return, ///< Ascend from the callee back past the same call edge.
  };

  Kind K = Kind::Step;
  int Proc = -1;    ///< Procedure containing CFGEdge.
  int CFGEdge = -1; ///< Edge index within Proc.
  int Callee = -1;  ///< Callee procedure, for Call/Return.
  /// For Step/Return: the fact holding in Proc after the edge. For
  /// Call: the entry fact assumed in the callee.
  int Fact = -1;
};

class WitnessBuilder {
public:
  /// \p S must be solved.
  explicit WitnessBuilder(const Solver &S);

  /// Reconstructs a shortest witness to (P, Node, Fact). Returns false
  /// when the exploded node is not genuinely reached. \p SeedFactOut
  /// receives the entry fact assumed at the program entry (LambdaFact
  /// when the path needs no entry assumption).
  bool reconstruct(int P, int Node, int Fact, std::vector<TraceStep> &Out,
                   int &SeedFactOut) const;

private:
  static constexpr long Inf = 1L << 60;

  long prefixDist(int P, int EntryFact) const;
  void emitPrefix(int P, int EntryFact, std::vector<TraceStep> &Out,
                  int &SeedFactOut) const;
  void emitSameLevel(int PathEdgeId, std::vector<TraceStep> &Out) const;

  const Solver &S;
  /// D[(P, entry fact)] = shortest prefix distance from the program
  /// entry; Pred the feed realizing it.
  std::map<std::pair<int, int>, long> D;
  std::map<std::pair<int, int>, Solver::FactFeed> Pred;
};

} // namespace ifds
} // namespace canvas

#endif // CANVAS_IFDS_WITNESS_H
