//===----------------------------------------------------------------------===//
///
/// \file
/// Certificate verification. Every routine follows the same monotone
/// sweep: deserialize and range-check the annotation, confirm the
/// engine's initial facts are covered, confirm closure under the shared
/// transfer/flow evaluators, then test each claim against the
/// annotation. Closure + coverage make the annotation a post-fixpoint,
/// hence an over-approximation of every reachable state — so a check
/// the annotation cannot reach (or evaluates to definitely-false on
/// every covering state) is proven Safe/Unreachable regardless of how
/// the emitting engine computed it.
///
//===----------------------------------------------------------------------===//

#include "cert/Checker.h"

#include "boolprog/Analysis.h"
#include "boolprog/BooleanProgram.h"
#include "boolprog/Interprocedural.h"
#include "cert/Emit.h"
#include "core/GenericBaseline.h"
#include "dataflow/Dataflow.h"
#include "dataflow/PointsTo.h"
#include "dataflow/PreAnalysis.h"
#include "ifds/Problem.h"
#include "support/Budget.h"
#include "support/Interner.h"
#include "tvla/Transfer.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace canvas;
using namespace canvas::cert;

namespace {

CheckResult fail(std::string Reason) {
  CheckResult R;
  R.Valid = false;
  R.Reason = std::move(Reason);
  return R;
}

CheckResult ok() {
  CheckResult R;
  R.Valid = true;
  return R;
}

/// Claims must only assert the proven outcomes and index a real check.
bool validClaimShape(const Certificate &C, size_t NumChecks,
                     std::string &Reason) {
  for (const Claim &Cl : C.Claims) {
    if (Cl.Check >= NumChecks) {
      Reason = "claim indexes nonexistent check " + std::to_string(Cl.Check);
      return false;
    }
    if (Cl.Outcome != core::CheckOutcome::Safe &&
        Cl.Outcome != core::CheckOutcome::Unreachable) {
      Reason = "claim asserts a non-proven outcome";
      return false;
    }
  }
  return true;
}

/// Reads one possible-value annotation body (per-node tag + stored
/// states) from \p R, reconstructs the pruned entries, and verifies
/// entry coverage and closure under the edge transfer — everything
/// checkBoolIntra needs short of the claims sweep. On success \p In
/// holds the per-node states and \p Covered marks the annotated nodes.
/// Coverage must be tracked beside the states: a zero-variable
/// program's states are zero-width and permanently disengaged
/// (StateVec.h), so engagement alone cannot say which nodes the
/// annotation reaches. Shared by the plain and the per-slice checkers;
/// the caller still validates that the reader consumed exactly its
/// section.
bool readBoolSection(Reader &R, const bp::BooleanProgram &BP,
                     const cj::CFGMethod &M, const dataflow::CFGInfo &Info,
                     bool AssumeChecksPass,
                     std::vector<bp::StateVec> &In,
                     std::vector<uint8_t> &Covered,
                     std::string &Reason) {
  const unsigned NumVars = static_cast<unsigned>(BP.Vars.size());

  std::vector<uint8_t> Tag(M.NumNodes, 0);
  In.assign(M.NumNodes, bp::StateVec());
  Covered.assign(M.NumNodes, 0);
  for (int N = 0; N != M.NumNodes; ++N) {
    Tag[N] = R.u8();
    if (Tag[N] > 2) {
      Reason = "bad annotation tag";
      return false;
    }
    Covered[N] = Tag[N] != 0;
    if (Tag[N] != 1)
      continue;
    In[N] = bp::StateVec(NumVars, bp::ValueSet::Bottom);
    for (unsigned V = 0; V != NumVars; ++V) {
      uint8_t B = R.u8();
      if (B > 3) {
        Reason = "out-of-range value set";
        return false;
      }
      In[N].set(V, static_cast<bp::ValueSet>(B));
    }
  }
  if (R.failed()) {
    Reason = "malformed payload";
    return false;
  }

  const bp::EdgeTransfer T(BP, AssumeChecksPass);

  // Reconstruct pruned entries in reverse-post-order: a pruned node's
  // unique in-edge comes from an RPO-earlier node whose state is
  // already available, so one ordered pass suffices.
  std::vector<int> ByRpo;
  for (int N = 0; N != M.NumNodes; ++N)
    if (Info.rpoNumber(N) >= 0)
      ByRpo.push_back(N);
  std::sort(ByRpo.begin(), ByRpo.end(), [&](int A, int B) {
    return Info.rpoNumber(A) < Info.rpoNumber(B);
  });
  for (int N : ByRpo) {
    if (Tag[N] != 2)
      continue;
    if (N == M.Entry || Info.predEdges(N).size() != 1) {
      Reason = "pruned node is not reconstructible";
      return false;
    }
    int EIdx = Info.predEdges(N)[0];
    int From = M.Edges[EIdx].From;
    if (!Covered[From] || Info.rpoNumber(From) < 0 ||
        Info.rpoNumber(From) >= Info.rpoNumber(N)) {
      Reason = "pruned node's predecessor is not annotated earlier";
      return false;
    }
    bp::StateVec Out;
    if (!T.apply(EIdx, In[From], Out)) {
      Reason = "pruned node is annotated but its in-edge is dead";
      return false;
    }
    In[N] = std::move(Out);
  }
  for (int N = 0; N != M.NumNodes; ++N)
    if (Tag[N] == 2 && Info.rpoNumber(N) < 0) {
      Reason = "pruned node outside the reverse-post-order";
      return false;
    }

  // (a) Initial facts covered: at method entry every variable may hold
  // either value. For a zero-variable program both sides of the state
  // comparison are the zero-width state, so only coverage itself is at
  // stake — the annotation's covered set then attests reachability the
  // same way the value sets do for wider programs.
  if (!Covered[M.Entry]) {
    Reason = "entry node not covered";
    return false;
  }
  if (In[M.Entry] != bp::StateVec(NumVars, bp::ValueSet::Both)) {
    Reason = "entry state does not cover the initial facts";
    return false;
  }

  // (b) Closure under the edge transfer.
  for (size_t EIdx = 0; EIdx != M.Edges.size(); ++EIdx) {
    int From = M.Edges[EIdx].From;
    int To = M.Edges[EIdx].To;
    if (!Covered[From])
      continue;
    bp::StateVec Out;
    if (!T.apply(static_cast<int>(EIdx), In[From], Out))
      continue; // No execution survives the edge.
    if (!Covered[To]) {
      Reason = "annotation not closed: reachable successor uncovered";
      return false;
    }
    // Word-parallel subsumption: Out joined into In[To] must not move.
    bp::StateVec Probe = In[To];
    if (Probe.joinWith(Out)) {
      Reason = "annotation not closed under edge transfer";
      return false;
    }
  }
  return true;
}

} // namespace

std::shared_ptr<const Checker::PTRevalidation>
Checker::cachedRevalidation() const {
  std::lock_guard<std::mutex> L(PTCacheMu);
  return PTCache;
}

void Checker::cacheRevalidation(std::shared_ptr<const PTRevalidation> R) const {
  std::lock_guard<std::mutex> L(PTCacheMu);
  PTCache = std::move(R);
}

const cj::CFGMethod *Checker::findUnit(const std::string &Unit) const {
  for (const cj::CFGMethod &M : CFG.Methods)
    if (M.name() == Unit)
      return &M;
  return nullptr;
}

CheckResult Checker::check(const Certificate &C) const {
  support::faultProbe("cert-check");
  auto T0 = std::chrono::steady_clock::now();
  CheckResult R;
  if (C.ContentHash != C.computeHash()) {
    R = fail("content hash mismatch");
  } else {
    switch (C.Kind) {
    case CertKind::BoolIntra:
      R = checkBoolIntra(C);
      break;
    case CertKind::Ifds:
      R = checkIfds(C);
      break;
    case CertKind::TvlaIndependent:
    case CertKind::TvlaRelational:
      R = checkTvla(C);
      break;
    case CertKind::AllocSite:
      R = checkAllocSite(C);
      break;
    case CertKind::SlicePartition:
      R = checkSlicePartition(C);
      break;
    default:
      R = fail("unknown certificate kind");
    }
  }
  auto T1 = std::chrono::steady_clock::now();
  R.Micros = std::chrono::duration<double, std::micro>(T1 - T0).count();
  if (!R.Valid && !R.Reason.empty())
    R.Reason = std::string(certKindName(C.Kind)) +
               (C.Unit.empty() ? "" : " " + C.Unit) + ": " + R.Reason;
  return R;
}

//===----------------------------------------------------------------------===//
// Boolean-program intraprocedural
//===----------------------------------------------------------------------===//

CheckResult Checker::checkBoolIntra(const Certificate &C) const {
  const cj::CFGMethod *M = findUnit(C.Unit);
  if (!M)
    return fail("unknown client method");

  // Rebuild the boolean program from the trusted inputs; the
  // certificate's dimensions must match or it was produced for a
  // different program.
  DiagnosticEngine Quiet;
  const bp::BooleanProgram BP = bp::buildBooleanProgram(Abs, *M, Quiet);
  const size_t NumVars = BP.Vars.size();

  Reader R(C.Payload);
  if (R.u32() != static_cast<uint32_t>(M->NumNodes) ||
      R.u32() != static_cast<uint32_t>(NumVars) ||
      R.u32() != static_cast<uint32_t>(BP.Checks.size()))
    return fail("dimension mismatch against rebuilt boolean program");
  const bool AssumeChecksPass = R.u8() != 0;

  std::string Reason;
  if (!validClaimShape(C, BP.Checks.size(), Reason))
    return fail(std::move(Reason));

  const dataflow::CFGInfo Info(*M);
  std::vector<bp::StateVec> In;
  std::vector<uint8_t> Covered;
  if (!readBoolSection(R, BP, *M, Info, AssumeChecksPass, In, Covered, Reason))
    return fail(std::move(Reason));
  if (!R.done())
    return fail("malformed payload");

  // (c) Claims uncovered by the annotation.
  for (const Claim &Cl : C.Claims) {
    const bp::Check &Chk = BP.Checks[Cl.Check];
    int Node = M->Edges[Chk.Edge].From;
    if (Cl.Outcome == core::CheckOutcome::Unreachable) {
      if (Covered[Node])
        return fail("unreachable claim at a covered node");
      continue;
    }
    if (!Covered[Node])
      continue; // Vacuously safe.
    if (Chk.Var < 0) {
      if (Chk.ConstantViolated)
        return fail("safe claim on a constant-violated check");
      continue;
    }
    if (bp::canBeOne(In[Node].get(Chk.Var)))
      return fail("safe claim but the annotation admits a violation");
  }
  CheckResult Res = ok();
  Res.NumChecks = BP.Checks.size();
  return Res;
}

//===----------------------------------------------------------------------===//
// Sliced boolean-program runs with partition evidence
//===----------------------------------------------------------------------===//

CheckResult Checker::checkSlicePartition(const Certificate &C) const {
  const cj::CFGMethod *M = findUnit(C.Unit);
  if (!M)
    return fail("unknown client method");

  Reader R(C.Payload);
  const uint8_t Mode = R.u8();
  const bool AssumeChecksPass = R.u8() != 0;
  if (Mode > 1)
    return fail("bad partition mode");
  if (R.u32() != static_cast<uint32_t>(M->NumNodes))
    return fail("node-count mismatch");
  const dataflow::CompVarMap Vars(*M);
  if (R.u32() != static_cast<uint32_t>(Vars.size()))
    return fail("variable-count mismatch");
  if (Vars.size() == 0)
    return fail("slice partition over no component variables");

  // The gate shared with the engine-side slicer: an abstraction reading
  // pre-call "ret" predicates cannot be certified per-slice.
  if (dataflow::abstractionReadsRetSources(Abs))
    return fail("abstraction reads pre-call 'ret' predicates");

  // --- Must-assigned annotation. Single-pass validation of an
  // under-approximation: the entry set stays within the parameters,
  // each edge grows it by at most its definite assignment, covered
  // nodes' successors stay covered, and every component-variable use is
  // in the pre-action set. Together: no execution uses an unassigned
  // component variable, the gate slicing cannot do without.
  std::vector<std::set<int>> Must(M->NumNodes);
  std::vector<bool> Covered(M->NumNodes, false);
  for (int N = 0; N != M->NumNodes; ++N) {
    uint8_t Tag = R.u8();
    if (Tag > 1)
      return fail("bad must-assigned tag");
    if (!Tag)
      continue;
    Covered[N] = true;
    uint32_t K = R.u32();
    if (R.failed() || K > Vars.size())
      return fail("oversized must-assigned set");
    for (uint32_t I = 0; I != K; ++I) {
      uint32_t V = R.u32();
      if (R.failed() || V >= Vars.size())
        return fail("out-of-range must-assigned variable");
      Must[N].insert(static_cast<int>(V));
    }
  }
  if (!Covered[M->Entry])
    return fail("entry node not covered by the must-assigned annotation");
  {
    std::set<int> Params;
    for (const cj::CParam &P : M->Method->Params) {
      int I = Vars.index(P.Name);
      if (I >= 0)
        Params.insert(I);
    }
    for (int V : Must[M->Entry])
      if (!Params.count(V))
        return fail("entry must-assigned set exceeds the parameters");
  }
  for (const cj::CFGEdge &E : M->Edges) {
    if (!Covered[E.From])
      continue;
    if (!Covered[E.To])
      return fail("must-assigned annotation not closed");
    const std::string *Def = dataflow::actionDef(E.Act);
    int DefIdx = Def ? Vars.index(*Def) : -1;
    for (int V : Must[E.To])
      if (!Must[E.From].count(V) && V != DefIdx)
        return fail("must-assigned annotation claims an unassigned variable");
    bool Uninit = false;
    dataflow::forEachActionUse(E.Act, [&](const std::string &U) {
      int I = Vars.index(U);
      if (I >= 0 && !Must[E.From].count(I))
        Uninit = true;
    });
    if (Uninit)
      return fail("possibly-uninitialized use under the partition");
  }

  // --- The partition itself, with each slice's restricted program
  // rebuilt from trusted inputs and its annotation validated like a
  // plain BoolIntra certificate.
  const uint32_t NumSlices = R.u32();
  if (R.failed() || NumSlices == 0 || NumSlices > Vars.size())
    return fail("implausible slice count");
  std::vector<std::vector<std::string>> Slices(NumSlices);
  std::map<std::string, int> SliceOf;
  DiagnosticEngine Quiet;
  const dataflow::CFGInfo Info(*M);
  std::vector<bp::BooleanProgram> BPs;
  BPs.reserve(NumSlices);
  std::vector<std::vector<bp::StateVec>> Ins(NumSlices);
  std::vector<std::vector<uint8_t>> Covs(NumSlices);
  std::string Reason;
  for (uint32_t I = 0; I != NumSlices; ++I) {
    const uint32_t Len = R.u32();
    if (R.failed() || Len == 0 || Len > Vars.size())
      return fail("implausible slice size");
    for (uint32_t J = 0; J != Len; ++J) {
      std::string Name = R.str();
      if (R.failed() || Vars.index(Name) < 0)
        return fail("slice names a non-component variable");
      if (!SliceOf.emplace(Name, static_cast<int>(I)).second)
        return fail("variable in two slices");
      Slices[I].push_back(std::move(Name));
    }
    bp::BuildRestriction Restrict;
    Restrict.Vars = Slices[I];
    BPs.push_back(bp::buildBooleanProgram(Abs, *M, Quiet, Restrict));
    if (R.u32() != static_cast<uint32_t>(BPs[I].Vars.size()) ||
        R.u32() != static_cast<uint32_t>(BPs[I].Checks.size()))
      return fail("slice dimension mismatch against rebuilt program");
    if (!readBoolSection(R, BPs[I], *M, Info, AssumeChecksPass, Ins[I],
                         Covs[I], Reason))
      return fail(std::move(Reason));
  }
  if (SliceOf.size() != Vars.size())
    return fail("slices do not cover every component variable");

  // True when every named component variable of \p A lies in one slice.
  auto SameSlice = [&](const cj::Action &A) {
    int S = -1;
    bool Ok = true;
    auto Visit = [&](const std::string &V) {
      auto It = SliceOf.find(V);
      if (It == SliceOf.end())
        return;
      if (S < 0)
        S = It->second;
      else if (S != It->second)
        Ok = false;
    };
    if (const std::string *Def = dataflow::actionDef(A))
      Visit(*Def);
    dataflow::forEachActionUse(A, Visit);
    return Ok;
  };

  if (Mode == 0) {
    // Local gates: without points-to evidence the partition is sound
    // only when no reference escapes the intraprocedural copy algebra.
    if (M->HasHeapComponentRefs)
      return fail("heap component references without points-to evidence");
    for (const cj::CFGEdge &E : M->Edges)
      if (E.Act.K == cj::Action::Kind::Havoc ||
          E.Act.K == cj::Action::Kind::OpaqueEffect)
        return fail("havocked component reference without points-to evidence");
    int PSlice = -1;
    for (const cj::CParam &P : M->Method->Params) {
      auto It = SliceOf.find(P.Name);
      if (It == SliceOf.end())
        continue;
      if (PSlice < 0)
        PSlice = It->second;
      else if (PSlice != It->second)
        return fail("parameters split across slices");
    }
    bool DefinesRet = false;
    for (const cj::CFGEdge &E : M->Edges)
      if (const std::string *Def = dataflow::actionDef(E.Act))
        DefinesRet |= *Def == "$ret";
    if (DefinesRet && PSlice >= 0) {
      auto It = SliceOf.find("$ret");
      if (It != SliceOf.end() && It->second != PSlice)
        return fail("'$ret' split from the parameters");
    }
    for (const cj::CFGEdge &E : M->Edges)
      if (!SameSlice(E.Act))
        return fail("an action relates variables across slices");
  } else {
    // Points-to evidence: regenerate the constraint system from the
    // trusted (program, spec) pair, validate the supplied solution with
    // one closure sweep (any post-fixpoint over-approximates the least
    // solution, and shrinking a set to hide an alias breaks closure),
    // and require the resulting may-interfere groups to respect the
    // partition. Client-call edges need no syntactic sweep — callee
    // interference surfaces in the groups. The whole-program solution
    // is identical across every method's certificate, so a solution
    // byte-equal to one this checker already revalidated reuses the
    // cached reachability and groups instead of re-deriving the system
    // (see PTRevalidation).
    if (!CFG.Prog)
      return fail("client program unavailable for points-to revalidation");
    std::shared_ptr<const PTRevalidation> Cached = cachedRevalidation();
    const uint32_t NumNodes = R.u32();
    if (Cached && Cached->NumNodes != NumNodes)
      Cached.reset();
    dataflow::PTSystem Sys;
    bool HaveSys = false;
    uint32_t NumObjs = 0;
    if (Cached) {
      NumObjs = Cached->NumObjs;
    } else {
      Sys = dataflow::generateConstraints(*CFG.Prog, Spec);
      HaveSys = true;
      if (R.failed() || NumNodes != static_cast<uint32_t>(Sys.Nodes.size()))
        return fail("points-to node-count mismatch against regenerated system");
      NumObjs = static_cast<uint32_t>(Sys.Objects.size());
    }
    dataflow::PointsToSolution Sol;
    Sol.VarPts.resize(NumNodes);
    auto ReadSet = [&](std::set<int> &S) {
      uint32_t K = R.u32();
      if (R.failed() || K > NumObjs)
        return false;
      for (uint32_t J = 0; J != K; ++J) {
        uint32_t O = R.u32();
        if (R.failed() || O >= NumObjs)
          return false;
        S.insert(static_cast<int>(O));
      }
      return true;
    };
    for (uint32_t N = 0; N != NumNodes; ++N)
      if (!ReadSet(Sol.VarPts[N]))
        return fail("malformed points-to set");
    const uint32_t NumFields = R.u32();
    for (uint32_t I = 0; I != NumFields; ++I) {
      uint32_t O = R.u32();
      std::string F = R.str();
      if (R.failed() || O >= NumObjs)
        return fail("malformed points-to field entry");
      std::set<int> S;
      if (!ReadSet(S))
        return fail("malformed points-to field set");
      Sol.FieldPts.emplace(std::make_pair(static_cast<int>(O), std::move(F)),
                           std::move(S));
    }
    std::shared_ptr<const PTRevalidation> Val;
    if (Cached && Cached->Sol.VarPts == Sol.VarPts &&
        Cached->Sol.FieldPts == Sol.FieldPts) {
      Val = std::move(Cached); // Same solution: closure already proved.
    } else {
      if (!HaveSys) {
        Sys = dataflow::generateConstraints(*CFG.Prog, Spec);
        HaveSys = true;
        if (NumNodes != static_cast<uint32_t>(Sys.Nodes.size()))
          return fail(
              "points-to node-count mismatch against regenerated system");
      }
      std::string Why;
      if (!dataflow::checkSolutionClosed(Sys, Sol, Why))
        return fail("points-to solution not closed: " + Why);
      auto Fresh = std::make_shared<PTRevalidation>();
      Fresh->NumNodes = NumNodes;
      Fresh->NumObjs = NumObjs;
      Fresh->Sol = std::move(Sol);
      Fresh->Reachable = Sys.reachableFromMain();
      Fresh->Groups =
          dataflow::computeAliasGroups(Sys, Fresh->Sol, Fresh->Reachable);
      cacheRevalidation(Fresh);
      Val = std::move(Fresh);
    }
    if (!Val->Reachable.count(C.Unit))
      return fail("method not reachable from main under the closed world");
    auto GIt = Val->Groups.find(C.Unit);
    if (GIt != Val->Groups.end())
      for (const std::vector<std::string> &G : GIt->second.Groups) {
        int S = -1;
        for (const std::string &V : G) {
          auto It = SliceOf.find(V);
          if (It == SliceOf.end())
            continue;
          if (S < 0)
            S = It->second;
          else if (S != It->second)
            return fail("may-interfere group split across slices");
        }
      }
    // Belt and braces: instance-relating actions named on the CFG must
    // still be co-sliced regardless of what the groups say.
    for (const cj::CFGEdge &E : M->Edges) {
      if (E.Act.K != cj::Action::Kind::AllocComp &&
          E.Act.K != cj::Action::Kind::CompCall &&
          E.Act.K != cj::Action::Kind::Copy)
        continue;
      if (!SameSlice(E.Act))
        return fail("an instance-relating action spans slices");
    }
  }
  if (!R.done())
    return fail("malformed payload");

  // --- Claims, indexed against the canonical (unrestricted) check
  // enumeration and validated against the owning slice's annotation.
  // A restricted build emits an edge's checks in the canonical order,
  // and check ownership (the receiver's — or for constructors the
  // result's — slice) places each edge's checks in exactly one slice;
  // text and location must agree or the mapping is refused.
  // Only the check enumeration is needed here — every claim is judged
  // against its owning slice's restricted program, so the unrestricted
  // instantiation (the dominant cost of this checker path) is skipped.
  const std::vector<bp::Check> CanonChecks = bp::enumerateChecks(Abs, *M, Quiet);
  if (!validClaimShape(C, CanonChecks.size(), Reason))
    return fail(std::move(Reason));
  std::map<int, std::vector<size_t>> CanonByEdge;
  for (size_t I = 0; I != CanonChecks.size(); ++I)
    CanonByEdge[CanonChecks[I].Edge].push_back(I);
  std::vector<std::pair<int, int>> Owner(CanonChecks.size(),
                                         std::make_pair(-1, -1));
  for (uint32_t S = 0; S != NumSlices; ++S) {
    std::map<int, std::vector<size_t>> ByEdge;
    for (size_t J = 0; J != BPs[S].Checks.size(); ++J)
      ByEdge[BPs[S].Checks[J].Edge].push_back(J);
    for (const auto &[Edge, Js] : ByEdge) {
      auto CIt = CanonByEdge.find(Edge);
      if (CIt == CanonByEdge.end() || CIt->second.size() != Js.size())
        return fail("slice checks do not match the canonical enumeration");
      for (size_t K = 0; K != Js.size(); ++K) {
        const bp::Check &A = CanonChecks[CIt->second[K]];
        const bp::Check &B = BPs[S].Checks[Js[K]];
        if (A.What != B.What || !(A.Loc == B.Loc))
          return fail("slice check diverges from the canonical check");
        if (Owner[CIt->second[K]].first >= 0)
          return fail("check owned by two slices");
        Owner[CIt->second[K]] = {static_cast<int>(S),
                                 static_cast<int>(Js[K])};
      }
    }
  }
  for (const Claim &Cl : C.Claims) {
    const auto [S, J] = Owner[Cl.Check];
    if (S < 0)
      return fail("claim on a check no slice owns");
    const bp::Check &Chk = BPs[S].Checks[J];
    int Node = M->Edges[Chk.Edge].From;
    const std::vector<bp::StateVec> &In = Ins[S];
    const std::vector<uint8_t> &Cov = Covs[S];
    if (Cl.Outcome == core::CheckOutcome::Unreachable) {
      if (Cov[Node])
        return fail("unreachable claim at a covered node");
      continue;
    }
    if (!Cov[Node])
      continue; // Vacuously safe.
    if (Chk.Var < 0) {
      if (Chk.ConstantViolated)
        return fail("safe claim on a constant-violated check");
      continue;
    }
    if (bp::canBeOne(In[Node].get(Chk.Var)))
      return fail("safe claim but the annotation admits a violation");
  }
  CheckResult Res = ok();
  Res.NumChecks = CanonChecks.size();
  return Res;
}

//===----------------------------------------------------------------------===//
// Interprocedural IFDS
//===----------------------------------------------------------------------===//

CheckResult Checker::checkIfds(const Certificate &C) const {
  const cj::CFGMethod *Main = CFG.mainCFG();
  if (!Main)
    return fail("client has no main() method");

  // Rebuild the exploded-supergraph model (flow functions + anchors)
  // from the trusted inputs.
  DiagnosticEngine Quiet;
  const bp::InterprocModel Model(Abs, CFG, *Main, Quiet);
  const ifds::Problem &Prob = Model.problem();
  const std::vector<bp::InterprocModel::Anchor> &Anchors = Model.anchors();

  Reader R(C.Payload);
  if (R.u32() != static_cast<uint32_t>(Prob.numProcs()) ||
      R.u32() != static_cast<uint32_t>(Anchors.size()))
    return fail("dimension mismatch against rebuilt model");

  std::string Reason;
  if (!validClaimShape(C, Anchors.size(), Reason))
    return fail(std::move(Reason));

  const uint32_t NumPE = R.u32();
  std::vector<bp::IfdsTabulation::PE> PEs;
  PEs.reserve(NumPE);
  // Packed-key hash sets for the closure sweep's membership tests (the
  // checker-side analogue of the solver's path-edge index).
  struct PEKeyHash {
    size_t operator()(const std::array<int, 4> &K) const {
      uint64_t H = support::hashMix(
          (static_cast<uint64_t>(static_cast<uint32_t>(K[0])) << 32) |
          static_cast<uint32_t>(K[1]));
      return support::hashCombine(
          H, support::hashMix(
                 (static_cast<uint64_t>(static_cast<uint32_t>(K[2])) << 32) |
                 static_cast<uint32_t>(K[3])));
    }
  };
  auto PackPair = [](int A, int B) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(A)) << 32) |
           static_cast<uint32_t>(B);
  };
  std::unordered_set<std::array<int, 4>, PEKeyHash> PESet;
  PESet.reserve(NumPE);
  std::vector<bool> HasPE(Prob.numProcs(), false);
  for (uint32_t I = 0; I != NumPE && !R.failed(); ++I) {
    bp::IfdsTabulation::PE E;
    E.Proc = R.i32();
    E.EntryFact = R.i32();
    E.Node = R.i32();
    E.Fact = R.i32();
    if (E.Proc < 0 || E.Proc >= Prob.numProcs())
      return fail("path edge with out-of-range procedure");
    const ifds::ProcView &V = Prob.proc(E.Proc);
    int NF = Prob.numFacts(E.Proc);
    if (E.EntryFact < 0 || E.EntryFact >= NF || E.Fact < 0 || E.Fact >= NF ||
        E.Node < 0 || E.Node >= V.NumNodes)
      return fail("path edge with out-of-range node or fact");
    PESet.insert({E.Proc, E.EntryFact, E.Node, E.Fact});
    HasPE[E.Proc] = true;
    PEs.push_back(E);
  }
  const uint32_t NumGenuine = R.u32();
  std::unordered_set<uint64_t> StoredGenuine;
  for (uint32_t I = 0; I != NumGenuine && !R.failed(); ++I) {
    int P = R.i32();
    int F = R.i32();
    if (P < 0 || P >= Prob.numProcs() || F < 0 || F >= Prob.numFacts(P))
      return fail("genuine entry with out-of-range procedure or fact");
    StoredGenuine.insert(PackPair(P, F));
  }
  if (!R.done())
    return fail("malformed payload");

  auto Has = [&](int P, int D, int N, int F) {
    return PESet.count({P, D, N, F}) != 0;
  };

  // (a) Initial facts covered, and seed totality: an activated
  // procedure (any path edge at all) must tabulate every entry fact —
  // the solver's contract, and what makes summary application complete.
  std::vector<int> Init;
  Prob.initialFacts(Init);
  const int EntryProc = Prob.entryProc();
  for (int D : Init)
    if (!Has(EntryProc, D, Prob.proc(EntryProc).Entry, D))
      return fail("initial fact not covered at the entry procedure");
  for (int P = 0; P != Prob.numProcs(); ++P) {
    if (!HasPE[P])
      continue;
    for (int D = 0; D != Prob.numFacts(P); ++D)
      if (!Has(P, D, Prob.proc(P).Entry, D))
        return fail("activated procedure missing a seed path edge");
  }

  // Callee exit facts per (proc, entry fact), for summary closure.
  std::map<std::pair<int, int>, std::vector<int>> ExitFacts;
  for (const bp::IfdsTabulation::PE &E : PEs)
    if (E.Node == Prob.proc(E.Proc).Exit)
      ExitFacts[{E.Proc, E.EntryFact}].push_back(E.Fact);

  // (b) Closure under the exploded flow functions.
  std::vector<std::vector<std::vector<int>>> OutEdges(Prob.numProcs());
  for (int P = 0; P != Prob.numProcs(); ++P) {
    const ifds::ProcView &V = Prob.proc(P);
    OutEdges[P].resize(V.NumNodes);
    for (size_t EI = 0; EI != V.Edges.size(); ++EI)
      OutEdges[P][V.Edges[EI].From].push_back(static_cast<int>(EI));
  }
  std::vector<int> Out;
  for (const bp::IfdsTabulation::PE &E : PEs) {
    const ifds::ProcView &V = Prob.proc(E.Proc);
    for (int EI : OutEdges[E.Proc][E.Node]) {
      const ifds::ProcView::Edge &CE = V.Edges[EI];
      if (CE.Callee < 0) {
        Out.clear();
        Prob.flowNormal(E.Proc, EI, E.Fact, Out);
        for (int F : Out)
          if (!Has(E.Proc, E.EntryFact, CE.To, F))
            return fail("path edges not closed under flowNormal");
        continue;
      }
      // Call edge: bypassing facts, callee activation, and summaries.
      Out.clear();
      Prob.flowCallToReturn(E.Proc, EI, E.Fact, Out);
      for (int F : Out)
        if (!Has(E.Proc, E.EntryFact, CE.To, F))
          return fail("path edges not closed under flowCallToReturn");
      if (!HasPE[CE.Callee])
        return fail("reached call site's callee is not activated");
      std::vector<int> Seeded;
      Prob.flowCall(E.Proc, EI, E.Fact, Seeded);
      for (int D2 : Seeded) {
        auto It = ExitFacts.find({CE.Callee, D2});
        if (It == ExitFacts.end())
          continue; // Callee never returns from this entry fact.
        for (int F2 : It->second) {
          Out.clear();
          Prob.flowSummary(E.Proc, EI, E.Fact, D2, F2, Out);
          for (int F : Out)
            if (!Has(E.Proc, E.EntryFact, CE.To, F))
              return fail("path edges not closed under flowSummary");
        }
      }
    }
  }

  // Genuine (procedure, entry fact) relation: the entry procedure's
  // initial facts, closed under flowCall feeds from genuine path edges.
  // Recomputed independently and required to match the stored relation
  // exactly, so verdict queries below answer from verified data.
  std::unordered_set<uint64_t> Genuine;
  for (int D : Init)
    Genuine.insert(PackPair(EntryProc, D));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const bp::IfdsTabulation::PE &E : PEs) {
      if (!Genuine.count(PackPair(E.Proc, E.EntryFact)))
        continue;
      const ifds::ProcView &V = Prob.proc(E.Proc);
      for (int EI : OutEdges[E.Proc][E.Node]) {
        const ifds::ProcView::Edge &CE = V.Edges[EI];
        if (CE.Callee < 0)
          continue;
        Out.clear();
        Prob.flowCall(E.Proc, EI, E.Fact, Out);
        for (int D2 : Out)
          Changed |= Genuine.insert(PackPair(CE.Callee, D2)).second;
      }
    }
  }
  if (Genuine != StoredGenuine)
    return fail("stored genuine-entry relation disagrees with closure");

  // Genuine reachability as per-procedure bit vectors (one bit per
  // exploded node), matching the solver's dense representation.
  std::vector<std::vector<uint64_t>> ReachedG(Prob.numProcs());
  for (int P = 0; P != Prob.numProcs(); ++P) {
    const size_t Bits =
        static_cast<size_t>(Prob.proc(P).NumNodes) * Prob.numFacts(P);
    ReachedG[P].assign((Bits + 63) / 64, 0);
  }
  for (const bp::IfdsTabulation::PE &E : PEs)
    if (Genuine.count(PackPair(E.Proc, E.EntryFact))) {
      const size_t Bit =
          static_cast<size_t>(E.Node) * Prob.numFacts(E.Proc) + E.Fact;
      ReachedG[E.Proc][Bit >> 6] |= 1ull << (Bit & 63);
    }
  auto Reached = [&](int P, int N, int F) {
    const size_t Bit = static_cast<size_t>(N) * Prob.numFacts(P) + F;
    return ((ReachedG[P][Bit >> 6] >> (Bit & 63)) & 1) != 0;
  };

  // (c) Claims uncovered by genuine reachability.
  for (const Claim &Cl : C.Claims) {
    const bp::InterprocModel::Anchor &A = Anchors[Cl.Check];
    if (Cl.Outcome == core::CheckOutcome::Unreachable) {
      if (Reached(A.Proc, A.Node, ifds::LambdaFact))
        return fail("unreachable claim at a genuinely reached node");
      continue;
    }
    if (!Reached(A.Proc, A.Node, ifds::LambdaFact))
      continue; // Vacuously safe.
    if (A.Var < 0) {
      if (A.ConstantViolated)
        return fail("safe claim on a constant-violated check");
      continue;
    }
    if (Reached(A.Proc, A.Node, 1 + A.Var))
      return fail("safe claim but a genuine path edge reaches the fact");
  }

  // Recompute the full verdict vector in the engine's report order:
  // anchors of activated procedures, in anchor order (the engine walks
  // procedures and their canonical checks in exactly this order, and
  // its Solver::reached is genuine-gated just like Reached here).
  CheckResult Res = ok();
  for (const bp::InterprocModel::Anchor &A : Anchors) {
    if (!Reached(A.Proc, Prob.proc(A.Proc).Entry, ifds::LambdaFact))
      continue; // Not callable from the entry method: not reported.
    core::CheckOutcome O;
    if (!Reached(A.Proc, A.Node, ifds::LambdaFact))
      O = core::CheckOutcome::Unreachable;
    else if (A.Var < 0)
      O = A.ConstantViolated ? core::CheckOutcome::Potential
                             : core::CheckOutcome::Safe;
    else
      O = Reached(A.Proc, A.Node, 1 + A.Var) ? core::CheckOutcome::Potential
                                             : core::CheckOutcome::Safe;
    Res.Canonical.push_back(O);
  }
  Res.NumChecks = Res.Canonical.size();
  return Res;
}

//===----------------------------------------------------------------------===//
// TVLA
//===----------------------------------------------------------------------===//

CheckResult Checker::checkTvla(const Certificate &C) const {
  const cj::CFGMethod *M = findUnit(C.Unit);
  if (!M)
    return fail("unknown client method");

  DiagnosticEngine Quiet;
  const tvla::Transfer T(Abs, *M, Quiet);
  const tvp::Vocabulary &V = T.vocabulary();

  const bool Relational = C.Kind == CertKind::TvlaRelational;
  Reader R(C.Payload);
  if ((R.u8() != 0) != Relational)
    return fail("configuration flag disagrees with certificate kind");
  if (R.u32() != static_cast<uint32_t>(M->NumNodes) ||
      R.u32() != static_cast<uint32_t>(V.Preds.size()) ||
      R.u32() != static_cast<uint32_t>(T.checks().size()))
    return fail("dimension mismatch against rebuilt vocabulary");

  std::string Reason;
  if (!validClaimShape(C, T.checks().size(), Reason))
    return fail(std::move(Reason));

  // Unique structure table: each distinct structure is decoded and
  // canonicality-checked once, then every per-node reference and every
  // transfer result is identified by its InternId.
  const uint32_t NumUnique = R.u32();
  if (R.failed() || NumUnique > 1u << 20)
    return fail("implausible unique-structure count");
  struct Hasher {
    uint64_t operator()(const tvla::Structure &S) const {
      return S.structuralHash();
    }
  };
  support::InternPool<tvla::Structure, Hasher> Pool;
  std::vector<support::InternId> TableIds;
  TableIds.reserve(NumUnique);
  for (uint32_t I = 0; I != NumUnique; ++I) {
    tvla::Structure S{V};
    if (!readStructure(R, V, S, Reason))
      return fail(std::move(Reason));
    if (!S.isCanonical(V))
      return fail("annotation structure is not canonical");
    TableIds.push_back(Pool.intern(std::move(S)));
  }

  std::vector<uint8_t> Tag(M->NumNodes, 0);
  std::vector<std::vector<support::InternId>> Ann(M->NumNodes);
  for (int N = 0; N != M->NumNodes; ++N) {
    Tag[N] = R.u8();
    if (Tag[N] > 2)
      return fail("bad annotation tag");
    if (Tag[N] != 1)
      continue;
    uint32_t Count = R.u32();
    if (R.failed() || Count > 65536)
      return fail("implausible structure count");
    if (!Relational && Count > 1)
      return fail("independent-attribute annotation with multiple "
                  "structures at one point");
    for (uint32_t I = 0; I != Count; ++I) {
      uint32_t Idx = R.u32();
      if (R.failed() || Idx >= NumUnique)
        return fail("structure id out of table range");
      Ann[N].push_back(TableIds[Idx]);
    }
  }
  if (!R.done())
    return fail("malformed payload");

  // One transfer evaluation per distinct (structure, edge) pair: the
  // accumulated requires evaluations are joins, so collapsing repeats
  // is exact, and the memo makes closure cost scale with distinct
  // structures instead of per-point occurrences.
  tvla::CheckAccum Acc = T.makeAccum();
  std::unordered_map<uint64_t, std::pair<bool, support::InternId>> Memo;
  auto ApplyMemo = [&](support::InternId SId,
                       int EIdx) -> std::pair<bool, support::InternId> {
    const uint64_t Key =
        (static_cast<uint64_t>(SId) << 32) | static_cast<uint32_t>(EIdx);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
    bool Dead = false;
    tvla::Structure Out = T.apply(Pool.get(SId), EIdx, Dead, &Acc);
    std::pair<bool, support::InternId> Res{Dead, 0};
    if (!Dead)
      Res.second = Pool.internRef(Out);
    Memo.emplace(Key, Res);
    return Res;
  };

  // Reconstruct verify-pruned per-point sets in reverse-post-order
  // (the TVLA analogue of readBoolSection's pruned entries): a pruned
  // node's set is exactly its unique in-edge's image of the
  // predecessor's set.
  const dataflow::CFGInfo Info(*M);
  std::vector<int> ByRpo;
  for (int N = 0; N != M->NumNodes; ++N)
    if (Info.rpoNumber(N) >= 0)
      ByRpo.push_back(N);
  std::sort(ByRpo.begin(), ByRpo.end(), [&](int A, int B) {
    return Info.rpoNumber(A) < Info.rpoNumber(B);
  });
  for (int N : ByRpo) {
    if (Tag[N] != 2)
      continue;
    if (N == M->Entry || Info.predEdges(N).size() != 1)
      return fail("pruned node is not reconstructible");
    int EIdx = Info.predEdges(N)[0];
    int From = M->Edges[EIdx].From;
    if (Ann[From].empty() || Info.rpoNumber(From) < 0 ||
        Info.rpoNumber(From) >= Info.rpoNumber(N))
      return fail("pruned node's predecessor is not annotated earlier");
    for (support::InternId SId : Ann[From]) {
      auto [Dead, OutId] = ApplyMemo(SId, EIdx);
      if (Dead)
        continue;
      if (std::find(Ann[N].begin(), Ann[N].end(), OutId) == Ann[N].end())
        Ann[N].push_back(OutId);
    }
    if (Ann[N].empty())
      return fail("pruned node reconstructs to an empty set");
  }
  for (int N = 0; N != M->NumNodes; ++N)
    if (Tag[N] == 2 && Ann[N].empty())
      return fail("pruned node outside the reverse-post-order");

  // Per-node membership for the coverage fast path.
  std::vector<std::unordered_set<support::InternId>> Members(M->NumNodes);
  for (int N = 0; N != M->NumNodes; ++N)
    Members[N].insert(Ann[N].begin(), Ann[N].end());

  // The semantic coverage test both engines' joins induce: In is
  // subsumed by Member iff joining In into Member changes nothing. An
  // exact id match short-circuits it (joining a structure into itself
  // never changes anything).
  auto CoveredById = [&](support::InternId InId, int Node) {
    if (Members[Node].count(InId))
      return true;
    const tvla::Structure &In = Pool.get(InId);
    for (support::InternId MemId : Ann[Node]) {
      tvla::Structure Probe = Pool.get(MemId);
      if (!Probe.joinWith(In, V))
        return true;
    }
    return false;
  };

  // (a) Initial fact covered: the entry structure is the empty universe
  // (no component objects exist at method entry).
  {
    const tvla::Structure Empty(V);
    bool EntryCovered = false;
    for (support::InternId MemId : Ann[M->Entry]) {
      tvla::Structure Probe = Pool.get(MemId);
      if (!Probe.joinWith(Empty, V)) {
        EntryCovered = true;
        break;
      }
    }
    if (!EntryCovered)
      return fail("entry structure not covered");
  }

  // (b) Closure under the edge transfer, accumulating every requires
  // evaluation the annotation can exhibit.
  for (size_t EIdx = 0; EIdx != M->Edges.size(); ++EIdx) {
    int From = M->Edges[EIdx].From;
    int To = M->Edges[EIdx].To;
    for (support::InternId SId : Ann[From]) {
      auto [Dead, OutId] = ApplyMemo(SId, static_cast<int>(EIdx));
      if (Dead)
        continue;
      if (!CoveredById(OutId, To))
        return fail("annotation not closed under edge transfer");
    }
  }

  // (c) Claims against the accumulated evaluations.
  for (const Claim &Cl : C.Claims) {
    const tvla::CheckAccum::Cell &Cell = Acc.Cells[Cl.Check];
    if (Cl.Outcome == core::CheckOutcome::Unreachable) {
      if (Cell.Seen)
        return fail("unreachable claim but the annotation reaches the "
                    "check");
      continue;
    }
    if (Cell.Seen && Cell.Acc != Kleene::False)
      return fail("safe claim but a covering structure admits a violation");
  }
  CheckResult Res = ok();
  Res.NumChecks = T.checks().size();
  return Res;
}

//===----------------------------------------------------------------------===//
// Allocation-site baseline
//===----------------------------------------------------------------------===//

CheckResult Checker::checkAllocSite(const Certificate &C) const {
  const cj::CFGMethod *M = findUnit(C.Unit);
  if (!M)
    return fail("unknown client method");

  using core::baseline::AbsState;
  using core::baseline::Loc;
  using core::baseline::LocSet;

  Reader R(C.Payload);
  if (R.u32() != static_cast<uint32_t>(M->NumNodes))
    return fail("node count mismatch");
  LocSet Multi;
  if (!readLocSet(R, Multi))
    return fail("malformed summarized-site set");
  struct SiteRec {
    uint32_t Edge = 0;
    SourceLoc ReqLoc;
  };
  const uint32_t NumSites = R.u32();
  std::vector<SiteRec> Sites;
  for (uint32_t I = 0; I != NumSites && !R.failed(); ++I) {
    SiteRec S;
    S.Edge = R.u32();
    S.ReqLoc.Line = R.u32();
    S.ReqLoc.Col = R.u32();
    Sites.push_back(S);
  }
  std::vector<bool> Reached(M->NumNodes, false);
  std::vector<AbsState> In(M->NumNodes);
  for (int N = 0; N != M->NumNodes && !R.failed(); ++N) {
    if (R.u8() == 0)
      continue;
    Reached[N] = true;
    if (!readAbsState(R, In[N]))
      return fail("malformed abstract state");
  }
  if (!R.done())
    return fail("malformed payload");

  std::string Reason;
  if (!validClaimShape(C, Sites.size(), Reason))
    return fail(std::move(Reason));

  const core::baseline::AllocSiteTransfer T(Spec, *M);

  // (a) Initial fact covered: every component variable unknown at
  // entry.
  if (!Reached[M->Entry])
    return fail("entry node not covered");
  {
    AbsState Probe = In[M->Entry];
    if (Probe.join(core::baseline::AllocSiteTransfer::entryState(*M)))
      return fail("entry state does not cover the initial facts");
  }

  // (b) Closure under the edge transfer, with the *stored* summarized
  // sites: must-alias reasoning consults Multi, and re-applying the
  // transfer must neither escape the stored states nor discover a
  // summarized site the certificate omitted (a smaller Multi would let
  // unsound must-equal conclusions through).
  std::map<core::CheckSite, bool> Flagged;
  for (size_t EIdx = 0; EIdx != M->Edges.size(); ++EIdx) {
    int From = M->Edges[EIdx].From;
    int To = M->Edges[EIdx].To;
    if (!Reached[From])
      continue;
    AbsState St = In[From];
    LocSet Grown = Multi;
    T.apply(static_cast<int>(EIdx), St, Grown, &Flagged);
    if (Grown != Multi)
      return fail("stored summarized-site set is not closed");
    if (!Reached[To])
      return fail("annotation not closed: reachable successor uncovered");
    AbsState Probe = In[To];
    if (Probe.join(St))
      return fail("annotation not closed under edge transfer");
  }

  // The serialized site list indexes the claims; it must match the
  // obligations the closure sweep actually encountered, in the same
  // (sorted) order.
  if (Flagged.size() != Sites.size())
    return fail("obligation site list disagrees with the closure sweep");
  {
    size_t I = 0;
    for (const auto &[Site, F] : Flagged) {
      (void)F;
      if (Site.Method != C.Unit ||
          Site.Edge != static_cast<int>(Sites[I].Edge) ||
          !(Site.ReqLoc == Sites[I].ReqLoc))
        return fail("obligation site list disagrees with the closure sweep");
      ++I;
    }
  }

  // (c) Claims: a Safe claim needs every covering state to prove the
  // obligation. The baseline never reports Unreachable (unreached
  // obligations simply never enter the site list).
  for (const Claim &Cl : C.Claims) {
    if (Cl.Outcome != core::CheckOutcome::Safe)
      return fail("baseline certificates can only claim Safe");
    auto It = Flagged.begin();
    std::advance(It, Cl.Check);
    if (It->second)
      return fail("safe claim but a covering state fails to prove the "
                  "obligation");
  }
  CheckResult Res = ok();
  Res.NumChecks = Sites.size();
  return Res;
}
