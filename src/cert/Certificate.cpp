//===----------------------------------------------------------------------===//
///
/// \file
/// Certificate container serialization: the "CNVC1" byte format plus
/// the bounds-checked primitive codecs shared with the per-kind payload
/// encoders in Emit.cpp. Serialization is deterministic so content
/// hashes are stable across emit/parse round trips.
///
//===----------------------------------------------------------------------===//

#include "cert/Certificate.h"

#include <cstring>

namespace canvas {
namespace cert {

const char *certKindName(CertKind K) {
  switch (K) {
  case CertKind::BoolIntra:
    return "bool-intra";
  case CertKind::Ifds:
    return "ifds";
  case CertKind::TvlaIndependent:
    return "tvla-independent";
  case CertKind::TvlaRelational:
    return "tvla-relational";
  case CertKind::AllocSite:
    return "alloc-site";
  case CertKind::SlicePartition:
    return "slice-partition";
  }
  return "unknown";
}

void Writer::u32(uint32_t V) {
  Buf.push_back(static_cast<uint8_t>(V & 0xff));
  Buf.push_back(static_cast<uint8_t>((V >> 8) & 0xff));
  Buf.push_back(static_cast<uint8_t>((V >> 16) & 0xff));
  Buf.push_back(static_cast<uint8_t>((V >> 24) & 0xff));
}

void Writer::u64(uint64_t V) {
  u32(static_cast<uint32_t>(V & 0xffffffffull));
  u32(static_cast<uint32_t>(V >> 32));
}

void Writer::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.insert(Buf.end(), S.begin(), S.end());
}

void Writer::bytes(const std::vector<uint8_t> &B) {
  u32(static_cast<uint32_t>(B.size()));
  Buf.insert(Buf.end(), B.begin(), B.end());
}

bool Reader::take(size_t N) {
  if (Fail || Size - Pos < N) {
    Fail = true;
    return false;
  }
  return true;
}

uint8_t Reader::u8() {
  if (!take(1))
    return 0;
  return Data[Pos++];
}

uint32_t Reader::u32() {
  if (!take(4))
    return 0;
  uint32_t V = static_cast<uint32_t>(Data[Pos]) |
               (static_cast<uint32_t>(Data[Pos + 1]) << 8) |
               (static_cast<uint32_t>(Data[Pos + 2]) << 16) |
               (static_cast<uint32_t>(Data[Pos + 3]) << 24);
  Pos += 4;
  return V;
}

uint64_t Reader::u64() {
  uint64_t Lo = u32();
  uint64_t Hi = u32();
  return Lo | (Hi << 32);
}

std::string Reader::str() {
  uint32_t N = u32();
  if (!take(N))
    return std::string();
  std::string S(reinterpret_cast<const char *>(Data + Pos), N);
  Pos += N;
  return S;
}

std::vector<uint8_t> Reader::bytes() {
  uint32_t N = u32();
  if (!take(N))
    return {};
  std::vector<uint8_t> B(Data + Pos, Data + Pos + N);
  Pos += N;
  return B;
}

uint64_t fnv1a(const uint8_t *Data, size_t Size, uint64_t Seed) {
  uint64_t H = Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

/// One certificate record, used both for the container and (with the
/// hash field zeroed) as the content-hash preimage.
void writeRecord(Writer &W, const Certificate &C, uint64_t Hash) {
  W.u8(static_cast<uint8_t>(C.Kind));
  W.str(C.Unit);
  W.u32(static_cast<uint32_t>(C.Claims.size()));
  for (const Claim &Cl : C.Claims) {
    W.u32(Cl.Check);
    W.u8(static_cast<uint8_t>(Cl.Outcome));
  }
  W.u32(C.RawEntries);
  W.u32(C.StoredEntries);
  W.bytes(C.Payload);
  W.u64(Hash);
}

bool readRecord(Reader &R, Certificate &C, std::string &Error) {
  C.Kind = static_cast<CertKind>(R.u8());
  C.Unit = R.str();
  uint32_t NumClaims = R.u32();
  C.Claims.clear();
  for (uint32_t I = 0; I < NumClaims && !R.failed(); ++I) {
    Claim Cl;
    Cl.Check = R.u32();
    Cl.Outcome = static_cast<core::CheckOutcome>(R.u8());
    C.Claims.push_back(Cl);
  }
  C.RawEntries = R.u32();
  C.StoredEntries = R.u32();
  C.Payload = R.bytes();
  C.ContentHash = R.u64();
  if (R.failed()) {
    Error = "truncated certificate record";
    return false;
  }
  switch (C.Kind) {
  case CertKind::BoolIntra:
  case CertKind::Ifds:
  case CertKind::TvlaIndependent:
  case CertKind::TvlaRelational:
  case CertKind::AllocSite:
  case CertKind::SlicePartition:
    break;
  default:
    Error = "unknown certificate kind";
    return false;
  }
  if (C.ContentHash != C.computeHash()) {
    Error = "certificate content hash mismatch for unit '" + C.Unit + "'";
    return false;
  }
  return true;
}

const char Magic[5] = {'C', 'N', 'V', 'C', '1'};

} // namespace

size_t Certificate::bytes() const {
  Writer W;
  writeRecord(W, *this, ContentHash);
  return W.buffer().size();
}

uint64_t Certificate::computeHash() const {
  Writer W;
  writeRecord(W, *this, 0);
  return fnv1a(W.buffer().data(), W.buffer().size());
}

std::vector<uint8_t>
serializeCertificates(const std::vector<Certificate> &Certs) {
  Writer W;
  for (char C : Magic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(static_cast<uint32_t>(Certs.size()));
  for (const Certificate &C : Certs)
    writeRecord(W, C, C.ContentHash);
  return W.take();
}

bool parseCertificates(const std::vector<uint8_t> &Data,
                       std::vector<Certificate> &Out, std::string &Error) {
  Out.clear();
  Reader R(Data);
  for (char C : Magic) {
    if (R.u8() != static_cast<uint8_t>(C)) {
      Error = "not a canvas certificate file (bad magic)";
      return false;
    }
  }
  uint32_t N = R.u32();
  for (uint32_t I = 0; I < N; ++I) {
    Certificate C;
    if (!readRecord(R, C, Error))
      return false;
    Out.push_back(std::move(C));
  }
  if (!R.done()) {
    Error = "trailing bytes after certificate records";
    return false;
  }
  return true;
}

} // namespace cert
} // namespace canvas
