//===----------------------------------------------------------------------===//
///
/// \file
/// Certificate emission: converts each engine's fixpoint evidence into
/// the serialized certificate format of cert/Certificate.h. Emission
/// runs on the untrusted side of the proof-carrying boundary — a wrong
/// certificate is caught by cert::Checker, never silently accepted —
/// so the emitters are free to share driver-side data structures.
///
/// The boolean-program emitter applies the abstraction-carrying-code
/// size reduction: a per-point state is omitted whenever the checker
/// can reconstruct it deterministically (single in-edge from an earlier
/// annotated point), and the emitter *verifies* the reconstruction
/// reproduces the engine's value before pruning, so pruning can never
/// change what the checker accepts.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CERT_EMIT_H
#define CANVAS_CERT_EMIT_H

#include "boolprog/Analysis.h"
#include "boolprog/Interprocedural.h"
#include "cert/Certificate.h"
#include "core/GenericBaseline.h"
#include "dataflow/Dataflow.h"
#include "tvla/Certify.h"

namespace canvas {
namespace dataflow {
struct PointsToResult;
} // namespace dataflow

namespace cert {

/// Certificate for one method's intraprocedural possible-value run.
/// \p R must come from the *unsliced* program built by
/// buildBooleanProgram(Abs, M) with entry state "every variable Both"
/// — the checker rebuilds exactly that program from trusted inputs.
Certificate emitBoolIntra(const bp::BooleanProgram &BP,
                          const bp::IntraResult &R,
                          bool AssumeChecksPass = true);

/// One slice's evidence for emitSlicePartition: the slice's component
/// variables, the boolean program built under that restriction, and its
/// intraprocedural fixpoint. Pointers are borrowed for the call.
struct SliceEvidence {
  std::vector<std::string> Vars;
  const bp::BooleanProgram *BP = nullptr;
  const bp::IntraResult *R = nullptr;
};

/// Certificate for one method certified per-slice: each slice's
/// possible-value annotation (same encoding as emitBoolIntra) plus the
/// evidence that the partition itself is sound — the definite-
/// assignment fixpoint as a must-assigned annotation and, when slicing
/// was justified by whole-program points-to (\p PT non-null, mode 1),
/// the points-to solution for the checker to revalidate against its own
/// regenerated constraint system. Claims index the canonical
/// (unrestricted) check enumeration — bp::enumerateChecks — and
/// \p Outcomes lists the merged per-check verdicts in that order.
/// \p MayUninit is the per-node definite-assignment fixpoint of the
/// method (empty inner vector = entry-unreachable node).
Certificate emitSlicePartition(const cj::CFGMethod &M,
                               const std::vector<SliceEvidence> &Slices,
                               const std::vector<core::CheckOutcome> &Outcomes,
                               const std::vector<dataflow::BitVector> &MayUninit,
                               const dataflow::PointsToResult *PT,
                               bool AssumeChecksPass = true);

/// Certificate for a whole-program interprocedural solve: the full
/// path-edge set plus the genuine (procedure, entry fact) relation.
Certificate emitIfds(const bp::InterprocModel &Model,
                     const bp::IfdsTabulation &Tab);

/// Certificate for one method's TVLA run (either configuration): the
/// per-point resident structure sets.
Certificate emitTvla(const wp::DerivedAbstraction &Abs,
                     const cj::CFGMethod &M,
                     const tvla::PointAnnotation &Ann,
                     const tvla::TVLAResult &R, bool Relational);

/// Certificate for one method's allocation-site baseline run: per-point
/// states, the summarized-site set, and the obligation site list.
Certificate emitAllocSite(const cj::CFGMethod &M,
                          const core::BaselineAnnotation &Ann,
                          const core::BaselineResult &R);

/// Structure / abstract-state codecs shared with cert::Checker (the
/// byte layout must match on both sides of the boundary; the checker
/// additionally validates value ranges and canonical form).
void writeStructure(Writer &W, const tvla::Structure &S,
                    const tvp::Vocabulary &V);
bool readStructure(Reader &R, const tvp::Vocabulary &V, tvla::Structure &Out,
                   std::string &Error);

void writeLocSet(Writer &W, const core::baseline::LocSet &L);
bool readLocSet(Reader &R, core::baseline::LocSet &Out);
void writeAbsState(Writer &W, const core::baseline::AbsState &St);
bool readAbsState(Reader &R, core::baseline::AbsState &Out);

} // namespace cert
} // namespace canvas

#endif // CANVAS_CERT_EMIT_H
