//===----------------------------------------------------------------------===//
///
/// \file
/// The proof-carrying certificate format backing Proven verdicts: the
/// fixpoint evidence an engine emits once (per-point abstract states,
/// path-edge sets, interned-structure sets) so that an independent
/// single-pass checker (cert/Checker.h) can re-validate the verdicts
/// without re-running any fixpoint. The shape follows abstraction-
/// carrying code: certificates are closed annotations, and a checker
/// only needs the transfer-function evaluators — never the worklists,
/// caps, or memo caches — to confirm closure.
///
/// A certificate is content-hashed (FNV-1a over the serialized record)
/// so a cert store can key re-validation on identity, and carries the
/// raw-vs-stored entry counts documenting the ACC pruning trick applied
/// at emission.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CERT_CERTIFICATE_H
#define CANVAS_CERT_CERTIFICATE_H

#include "core/Verdict.h"

#include <cstdint>
#include <string>
#include <vector>

namespace canvas {
namespace cert {

/// Which engine's evidence the payload encodes.
enum class CertKind : uint8_t {
  BoolIntra = 1,      ///< SCMPIntra possible-value annotation (pruned).
  Ifds = 2,           ///< SCMPInterproc path-edge/summary tabulation.
  TvlaIndependent = 3, ///< One structure per point.
  TvlaRelational = 4,  ///< Structure set per point.
  AllocSite = 5,       ///< Allocation-site states + summarized sites.
  /// SCMPIntra per-slice annotations plus the evidence that the slice
  /// partition itself is sound (must-assigned annotation, and — when
  /// slicing was justified by points-to — the whole-program points-to
  /// solution, revalidated against a checker-regenerated constraint
  /// system).
  SlicePartition = 6,
};

const char *certKindName(CertKind K);

/// One verdict the certificate justifies: the check's index in the
/// unit's canonical check enumeration (boolean-program check order,
/// tvla::Transfer::checks() order, InterprocModel::anchors() order, or
/// sorted CheckSite order for AllocSite) and the claimed outcome. Only
/// proven outcomes (Safe, Unreachable) require justification; violation
/// verdicts are certified separately by witness replay.
struct Claim {
  uint32_t Check = 0;
  core::CheckOutcome Outcome = core::CheckOutcome::Safe;
};

struct Certificate {
  CertKind Kind = CertKind::BoolIntra;
  /// Analyzed unit: "Class::method" for per-method engines, "" for the
  /// whole-program interprocedural engine.
  std::string Unit;
  std::vector<Claim> Claims;
  /// Kind-specific binary evidence (see cert/Emit.cpp for layouts).
  std::vector<uint8_t> Payload;
  /// Annotation entries the engine computed / actually serialized
  /// (StoredEntries < RawEntries documents reconstruction pruning).
  uint32_t RawEntries = 0;
  uint32_t StoredEntries = 0;
  /// FNV-1a over the serialized record with this field zeroed.
  uint64_t ContentHash = 0;

  /// Serialized size in bytes (the exact length serialize() appends).
  size_t bytes() const;
  /// Computes the content hash of the current field values.
  uint64_t computeHash() const;
  /// Stamps ContentHash; call after the payload and claims are final.
  void seal() { ContentHash = computeHash(); }
};

/// Bounds-checked little-endian readers/writers shared by the payload
/// codecs and the container format. Writer never fails; Reader latches
/// a failure flag instead of throwing so a truncated or hostile buffer
/// degrades to a parse error.
class Writer {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void str(const std::string &S);
  void bytes(const std::vector<uint8_t> &B);
  std::vector<uint8_t> take() { return std::move(Buf); }
  const std::vector<uint8_t> &buffer() const { return Buf; }

private:
  std::vector<uint8_t> Buf;
};

class Reader {
public:
  Reader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit Reader(const std::vector<uint8_t> &B)
      : Reader(B.data(), B.size()) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  std::string str();
  std::vector<uint8_t> bytes();

  bool failed() const { return Fail; }
  bool atEnd() const { return Pos == Size; }
  /// True iff the whole buffer was consumed without a bounds failure.
  bool done() const { return !Fail && atEnd(); }

private:
  bool take(size_t N);

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Fail = false;
};

/// FNV-1a 64-bit over \p Data, continuing from \p Seed.
uint64_t fnv1a(const uint8_t *Data, size_t Size,
               uint64_t Seed = 0xcbf29ce484222325ull);

/// Serializes certificates into the "CNVC1" container (magic, count,
/// then one record per certificate). Deterministic: re-serializing a
/// parsed container is byte-identical.
std::vector<uint8_t>
serializeCertificates(const std::vector<Certificate> &Certs);

/// Parses a container produced by serializeCertificates. Returns false
/// (with \p Error set) on malformed input or a content-hash mismatch.
bool parseCertificates(const std::vector<uint8_t> &Data,
                       std::vector<Certificate> &Out, std::string &Error);

} // namespace cert
} // namespace canvas

#endif // CANVAS_CERT_CERTIFICATE_H
