//===----------------------------------------------------------------------===//
///
/// \file
/// The independent certificate checker: validates a Proven verdict's
/// certificate in one monotone sweep over the serialized annotation,
/// confirming (a) the engine's initial facts are covered, (b) the
/// annotation is closed under the transfer/flow functions, and (c) each
/// claimed Safe/Unreachable check is uncovered by the annotation.
///
/// Trusted-base boundary: the checker shares only the *evaluators* with
/// the engines — bp::EdgeTransfer, the ifds::Problem flow functions,
/// tvla::Transfer, baseline::AllocSiteTransfer — plus the trusted input
/// constructions those evaluators are derived from (boolean-program /
/// vocabulary / model building over the spec abstraction and client
/// CFG). It never touches a fixpoint driver, worklist, structure cap,
/// reseed loop, or memo cache; a bug confined to driver machinery
/// cannot make an invalid certificate pass.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_CERT_CHECKER_H
#define CANVAS_CERT_CHECKER_H

#include "cert/Certificate.h"
#include "client/CFG.h"
#include "dataflow/PointsTo.h"
#include "easl/AST.h"
#include "wp/Abstraction.h"

#include <memory>
#include <mutex>
#include <set>
#include <string>

namespace canvas {
namespace cert {

struct CheckResult {
  bool Valid = false;
  std::string Reason; ///< Empty when Valid.
  double Micros = 0;  ///< Wall-clock verification time.

  /// Size of the canonical check enumeration the claims index, rebuilt
  /// from the trusted inputs (boolean-program checks, activated IFDS
  /// anchors, TVLA requires sites, flagged allocation-site
  /// obligations). Valid certificates always set it; store::CertStore
  /// uses it to reject entries whose stored verdict vector is
  /// incomplete — a deleted check is as wrong as a flipped one.
  size_t NumChecks = 0;

  /// IFDS only: the full verdict vector recomputed from the verified
  /// tabulation, in the engine's report order (per activated procedure,
  /// per canonical check). The IFDS claim space indexes anchors() while
  /// the report skips non-activated anchors, so positional claim
  /// cross-checks cannot gate a stored report; this vector can, and
  /// exactly — Solver::reached is genuine-gated just like the
  /// recomputation here. Empty for every other certificate kind.
  std::vector<core::CheckOutcome> Canonical;
};

/// Verifies certificates against the trusted inputs: the component
/// spec, its derived abstraction, and the client CFG. Stateless across
/// check() calls; one checker validates certificates from any engine.
class Checker {
public:
  Checker(const easl::Spec &Spec, const wp::DerivedAbstraction &Abs,
          const cj::ClientCFG &CFG)
      : Spec(Spec), Abs(Abs), CFG(CFG) {}

  /// Single-pass verification of one certificate. Never throws on
  /// invalid evidence — rejection is a structured CheckResult (the
  /// certifier converts it into a CertifyError); only the injected
  /// fault probe "cert-check" may throw.
  CheckResult check(const Certificate &C) const;

private:
  CheckResult checkBoolIntra(const Certificate &C) const;
  CheckResult checkSlicePartition(const Certificate &C) const;
  CheckResult checkIfds(const Certificate &C) const;
  CheckResult checkTvla(const Certificate &C) const;
  CheckResult checkAllocSite(const Certificate &C) const;

  const cj::CFGMethod *findUnit(const std::string &Unit) const;

  /// One revalidated points-to solution: the constraint system is
  /// regenerated from the trusted (program, spec) pair — both fixed for
  /// this checker — the solution closure-checked, and the reachability
  /// and alias groups derived once. Mode-1 SlicePartition certificates
  /// all ship the same whole-program solution, so after the first
  /// method's certificate pays for the sweep, the rest compare their
  /// decoded solution against the cached one and reuse the groups
  /// instead of re-deriving the system per certificate. Purely a memo:
  /// a certificate whose solution differs takes (and re-caches) the
  /// full path.
  struct PTRevalidation {
    uint32_t NumNodes = 0;
    uint32_t NumObjs = 0;
    dataflow::PointsToSolution Sol;
    std::set<std::string> Reachable;
    std::map<std::string, dataflow::MethodAliasInfo> Groups;
  };
  std::shared_ptr<const PTRevalidation> cachedRevalidation() const;
  void cacheRevalidation(std::shared_ptr<const PTRevalidation> R) const;

  const easl::Spec &Spec;
  const wp::DerivedAbstraction &Abs;
  const cj::ClientCFG &CFG;
  /// check() is const and may run from concurrent supervisor tasks; the
  /// memo above is the only mutable state and is guarded here.
  mutable std::mutex PTCacheMu;
  mutable std::shared_ptr<const PTRevalidation> PTCache;
};

} // namespace cert
} // namespace canvas

#endif // CANVAS_CERT_CHECKER_H
