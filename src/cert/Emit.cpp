#include "cert/Emit.h"

#include "dataflow/Dataflow.h"
#include "dataflow/PointsTo.h"
#include "support/Interner.h"
#include "tvla/Transfer.h"

#include <algorithm>
#include <array>
#include <set>

using namespace canvas;
using namespace canvas::cert;

//===----------------------------------------------------------------------===//
// Shared codecs
//===----------------------------------------------------------------------===//

void cert::writeStructure(Writer &W, const tvla::Structure &S,
                          const tvp::Vocabulary &V) {
  unsigned N = S.numNodes();
  W.u32(N);
  for (unsigned I = 0; I != N; ++I)
    W.u8(S.isSummary(I) ? 1 : 0);
  for (size_t P = 0; P != V.Preds.size(); ++P) {
    if (V.Preds[P].Arity == 1) {
      for (unsigned I = 0; I != N; ++I)
        W.u8(static_cast<uint8_t>(S.unary(static_cast<int>(P), I)));
    } else {
      for (unsigned A = 0; A != N; ++A)
        for (unsigned B = 0; B != N; ++B)
          W.u8(static_cast<uint8_t>(S.binary(static_cast<int>(P), A, B)));
    }
  }
}

bool cert::readStructure(Reader &R, const tvp::Vocabulary &V,
                         tvla::Structure &Out, std::string &Error) {
  uint32_t N = R.u32();
  if (R.failed() || N > 4096) {
    Error = "implausible structure universe size";
    return false;
  }
  Out = tvla::Structure(V);
  Out.resizeNodes(N); // One buffer rebuild, not N.
  for (uint32_t I = 0; I != N; ++I)
    Out.setSummary(I, R.u8() != 0);
  for (size_t P = 0; P != V.Preds.size(); ++P) {
    unsigned Count = V.Preds[P].Arity == 1 ? N : N * N;
    for (unsigned I = 0; I != Count; ++I) {
      uint8_t B = R.u8();
      if (B > 2) {
        Error = "out-of-range Kleene value in structure";
        return false;
      }
      if (V.Preds[P].Arity == 1)
        Out.setUnary(static_cast<int>(P), I, static_cast<Kleene>(B));
      else
        Out.setBinary(static_cast<int>(P), I / N, I % N,
                      static_cast<Kleene>(B));
    }
  }
  if (R.failed()) {
    Error = "truncated structure";
    return false;
  }
  return true;
}

void cert::writeLocSet(Writer &W, const core::baseline::LocSet &L) {
  W.u32(static_cast<uint32_t>(L.size()));
  for (core::baseline::Loc X : L)
    W.i32(X);
}

bool cert::readLocSet(Reader &R, core::baseline::LocSet &Out) {
  uint32_t N = R.u32();
  for (uint32_t I = 0; I != N && !R.failed(); ++I)
    Out.insert(R.i32());
  return !R.failed();
}

void cert::writeAbsState(Writer &W, const core::baseline::AbsState &St) {
  W.u32(static_cast<uint32_t>(St.Vars.size()));
  for (const auto &[Name, Set] : St.Vars) {
    W.str(Name);
    writeLocSet(W, Set);
  }
  W.u32(static_cast<uint32_t>(St.Heap.size()));
  for (const auto &[Key, Set] : St.Heap) {
    W.i32(Key.first);
    W.str(Key.second);
    writeLocSet(W, Set);
  }
  writeLocSet(W, St.Allocated);
}

bool cert::readAbsState(Reader &R, core::baseline::AbsState &Out) {
  uint32_t NV = R.u32();
  for (uint32_t I = 0; I != NV && !R.failed(); ++I) {
    std::string Name = R.str();
    core::baseline::LocSet Set;
    if (!readLocSet(R, Set))
      return false;
    Out.Vars.emplace(std::move(Name), std::move(Set));
  }
  uint32_t NH = R.u32();
  for (uint32_t I = 0; I != NH && !R.failed(); ++I) {
    core::baseline::Loc L = R.i32();
    std::string Field = R.str();
    core::baseline::LocSet Set;
    if (!readLocSet(R, Set))
      return false;
    Out.Heap.emplace(std::make_pair(L, std::move(Field)), std::move(Set));
  }
  if (!readLocSet(R, Out.Allocated))
    return false;
  return !R.failed();
}

//===----------------------------------------------------------------------===//
// Boolean-program intraprocedural
//===----------------------------------------------------------------------===//

namespace {

/// Serializes one method's possible-value annotation body (per-node
/// tag + stored states) with verify-pruning: a node's state is omitted
/// only when re-running the checker's reconstruction rule (unique
/// in-edge from an earlier annotated node) reproduces the engine's
/// value exactly. The engine's and the checker's values then coincide
/// by induction over RPO, so pruning is unconditionally sound — a
/// disagreement simply stores the entry instead. Shared by the plain
/// and the per-slice emitters.
void writeBoolSection(Writer &W, const bp::BooleanProgram &BP,
                      const bp::IntraResult &R, bool AssumeChecksPass,
                      uint32_t &RawEntries, uint32_t &StoredEntries) {
  const cj::CFGMethod &M = *BP.CFG;
  const dataflow::CFGInfo Info(M);
  const bp::EdgeTransfer T(BP, AssumeChecksPass);
  for (int N = 0; N != M.NumNodes; ++N) {
    if (!R.reachable(N)) {
      W.u8(0);
      continue;
    }
    ++RawEntries;
    bool Pruned = false;
    if (N != M.Entry && Info.rpoNumber(N) > 0 &&
        Info.predEdges(N).size() == 1) {
      int EIdx = Info.predEdges(N)[0];
      int From = M.Edges[EIdx].From;
      if (R.reachable(From) && Info.rpoNumber(From) >= 0 &&
          Info.rpoNumber(From) < Info.rpoNumber(N)) {
        bp::StateVec Out;
        Pruned = T.apply(EIdx, R.In[From], Out) && Out == R.In[N];
      }
    }
    if (Pruned) {
      W.u8(2);
      continue;
    }
    ++StoredEntries;
    W.u8(1);
    for (unsigned V = 0; V != R.In[N].size(); ++V)
      W.u8(static_cast<uint8_t>(R.In[N].get(V)));
  }
}

void writeObjSet(Writer &W, const std::set<int> &S) {
  W.u32(static_cast<uint32_t>(S.size()));
  for (int Obj : S)
    W.u32(static_cast<uint32_t>(Obj));
}

} // namespace

Certificate cert::emitBoolIntra(const bp::BooleanProgram &BP,
                                const bp::IntraResult &R,
                                bool AssumeChecksPass) {
  const cj::CFGMethod &M = *BP.CFG;
  Certificate C;
  C.Kind = CertKind::BoolIntra;
  C.Unit = M.name();

  for (size_t I = 0; I != R.CheckResults.size(); ++I)
    if (R.CheckResults[I] == core::CheckOutcome::Safe ||
        R.CheckResults[I] == core::CheckOutcome::Unreachable)
      C.Claims.push_back({static_cast<uint32_t>(I), R.CheckResults[I]});

  Writer W;
  W.u32(static_cast<uint32_t>(M.NumNodes));
  W.u32(static_cast<uint32_t>(BP.Vars.size()));
  W.u32(static_cast<uint32_t>(BP.Checks.size()));
  W.u8(AssumeChecksPass ? 1 : 0);
  writeBoolSection(W, BP, R, AssumeChecksPass, C.RawEntries, C.StoredEntries);
  C.Payload = W.take();
  C.seal();
  return C;
}

Certificate cert::emitSlicePartition(
    const cj::CFGMethod &M, const std::vector<SliceEvidence> &Slices,
    const std::vector<core::CheckOutcome> &Outcomes,
    const std::vector<dataflow::BitVector> &MayUninit,
    const dataflow::PointsToResult *PT, bool AssumeChecksPass) {
  Certificate C;
  C.Kind = CertKind::SlicePartition;
  C.Unit = M.name();

  for (size_t I = 0; I != Outcomes.size(); ++I)
    if (Outcomes[I] == core::CheckOutcome::Safe ||
        Outcomes[I] == core::CheckOutcome::Unreachable)
      C.Claims.push_back({static_cast<uint32_t>(I), Outcomes[I]});

  Writer W;
  W.u8(PT ? 1 : 0);
  W.u8(AssumeChecksPass ? 1 : 0);
  W.u32(static_cast<uint32_t>(M.NumNodes));
  W.u32(static_cast<uint32_t>(M.CompVars.size()));

  // Must-assigned annotation: the complement of the engine's
  // may-uninitialized fixpoint, per covered node. The checker validates
  // it as a single-pass under-approximation, proving no component
  // variable is used before assignment — the gate a slice partition
  // shares with the engine-side slicer.
  for (int N = 0; N != M.NumNodes; ++N) {
    const dataflow::BitVector &B = MayUninit[N];
    if (B.empty()) {
      W.u8(0);
      continue;
    }
    W.u8(1);
    std::vector<uint32_t> Must;
    for (size_t V = 0; V != B.size(); ++V)
      if (!B[V])
        Must.push_back(static_cast<uint32_t>(V));
    W.u32(static_cast<uint32_t>(Must.size()));
    for (uint32_t V : Must)
      W.u32(V);
  }

  W.u32(static_cast<uint32_t>(Slices.size()));
  for (const SliceEvidence &S : Slices) {
    W.u32(static_cast<uint32_t>(S.Vars.size()));
    for (const std::string &V : S.Vars)
      W.str(V);
    W.u32(static_cast<uint32_t>(S.BP->Vars.size()));
    W.u32(static_cast<uint32_t>(S.BP->Checks.size()));
    writeBoolSection(W, *S.BP, *S.R, AssumeChecksPass, C.RawEntries,
                     C.StoredEntries);
  }

  // Mode-1 evidence: the points-to solution, node-indexed against the
  // constraint system the checker regenerates from the trusted
  // (program, spec) pair. Only the solution ships — the system itself
  // is recomputed, so tampering with constraints is impossible and
  // tampering with the solution breaks the closure sweep.
  if (PT) {
    const dataflow::PointsToSolution &Sol = PT->Sol;
    W.u32(static_cast<uint32_t>(PT->Sys.Nodes.size()));
    for (size_t N = 0; N != PT->Sys.Nodes.size(); ++N)
      writeObjSet(W, Sol.pts(static_cast<int>(N)));
    W.u32(static_cast<uint32_t>(Sol.FieldPts.size()));
    for (const auto &[Key, S] : Sol.FieldPts) {
      W.u32(static_cast<uint32_t>(Key.first));
      W.str(Key.second);
      writeObjSet(W, S);
    }
  }

  C.Payload = W.take();
  C.seal();
  return C;
}

//===----------------------------------------------------------------------===//
// Interprocedural IFDS
//===----------------------------------------------------------------------===//

Certificate cert::emitIfds(const bp::InterprocModel &Model,
                           const bp::IfdsTabulation &Tab) {
  const ifds::Problem &Prob = Model.problem();
  Certificate C;
  C.Kind = CertKind::Ifds;
  C.Unit = ""; // Whole program.
  C.RawEntries = C.StoredEntries = static_cast<uint32_t>(Tab.PathEdges.size());

  // Recompute the per-anchor verdicts from the tabulation itself (the
  // same genuine-reachability queries the analysis makes), so claims
  // stay in anchors() order regardless of which procedures the verdict
  // loop visited.
  std::set<std::pair<int, int>> Genuine(Tab.Genuine.begin(),
                                        Tab.Genuine.end());
  std::set<std::array<int, 3>> ReachedG;
  for (const bp::IfdsTabulation::PE &E : Tab.PathEdges)
    if (Genuine.count({E.Proc, E.EntryFact}))
      ReachedG.insert({E.Proc, E.Node, E.Fact});
  auto Reached = [&](int P, int N, int F) {
    return ReachedG.count({P, N, F}) != 0;
  };

  const std::vector<bp::InterprocModel::Anchor> &Anchors = Model.anchors();
  for (size_t I = 0; I != Anchors.size(); ++I) {
    const bp::InterprocModel::Anchor &A = Anchors[I];
    if (!Reached(A.Proc, Prob.proc(A.Proc).Entry, ifds::LambdaFact))
      continue; // Procedure not activated: no verdict reported.
    core::CheckOutcome Out;
    if (!Reached(A.Proc, A.Node, ifds::LambdaFact))
      Out = core::CheckOutcome::Unreachable;
    else if (A.Var < 0)
      Out = A.ConstantViolated ? core::CheckOutcome::Potential
                               : core::CheckOutcome::Safe;
    else
      Out = Reached(A.Proc, A.Node, 1 + A.Var) ? core::CheckOutcome::Potential
                                               : core::CheckOutcome::Safe;
    if (Out == core::CheckOutcome::Safe ||
        Out == core::CheckOutcome::Unreachable)
      C.Claims.push_back({static_cast<uint32_t>(I), Out});
  }

  Writer W;
  W.u32(static_cast<uint32_t>(Prob.numProcs()));
  W.u32(static_cast<uint32_t>(Anchors.size()));
  W.u32(static_cast<uint32_t>(Tab.PathEdges.size()));
  for (const bp::IfdsTabulation::PE &E : Tab.PathEdges) {
    W.u32(static_cast<uint32_t>(E.Proc));
    W.u32(static_cast<uint32_t>(E.EntryFact));
    W.u32(static_cast<uint32_t>(E.Node));
    W.u32(static_cast<uint32_t>(E.Fact));
  }
  W.u32(static_cast<uint32_t>(Tab.Genuine.size()));
  for (const auto &[P, F] : Tab.Genuine) {
    W.u32(static_cast<uint32_t>(P));
    W.u32(static_cast<uint32_t>(F));
  }
  C.Payload = W.take();
  C.seal();
  return C;
}

//===----------------------------------------------------------------------===//
// TVLA
//===----------------------------------------------------------------------===//

Certificate cert::emitTvla(const wp::DerivedAbstraction &Abs,
                           const cj::CFGMethod &M,
                           const tvla::PointAnnotation &Ann,
                           const tvla::TVLAResult &R, bool Relational) {
  // The vocabulary construction already warned through the engine's
  // diagnostics; re-deriving it here must not duplicate the stream.
  DiagnosticEngine Quiet;
  tvla::Transfer T(Abs, M, Quiet);
  const tvp::Vocabulary &V = T.vocabulary();

  Certificate C;
  C.Kind = Relational ? CertKind::TvlaRelational : CertKind::TvlaIndependent;
  C.Unit = M.name();

  for (size_t I = 0; I != R.Checks.size(); ++I)
    if (R.Checks[I].Outcome == core::CheckOutcome::Safe ||
        R.Checks[I].Outcome == core::CheckOutcome::Unreachable)
      C.Claims.push_back({static_cast<uint32_t>(I), R.Checks[I].Outcome});

  // Intern every annotation structure: one per-point set member costs
  // one u32 id reference, and each distinct structure is serialized at
  // most once in the unique table. Program points overwhelmingly share
  // structures, so this collapses the payload the old
  // one-serialization-per-occurrence format blew up.
  struct Hasher {
    uint64_t operator()(const tvla::Structure &S) const {
      return S.structuralHash();
    }
  };
  support::InternPool<tvla::Structure, Hasher> Pool;
  std::vector<std::vector<support::InternId>> Ids(M.NumNodes);
  for (int N = 0; N != M.NumNodes; ++N)
    for (const tvla::Structure &S : Ann.PerNode[N]) {
      ++C.RawEntries;
      support::InternId Id = Pool.internRef(S);
      // Structural duplicates within one set (possible after budget-cap
      // victim joins) collapse to one id; coverage is unaffected.
      if (std::find(Ids[N].begin(), Ids[N].end(), Id) == Ids[N].end())
        Ids[N].push_back(Id);
    }

  // Verify-prune, the per-point-set analogue of writeBoolSection: a
  // node whose unique in-edge comes from an RPO-earlier annotated node
  // stores no ids at all when re-applying that edge to the
  // predecessor's set reproduces the node's id set exactly — the
  // checker reconstructs it the same way, so pruning is verified sound
  // at emit time.
  const dataflow::CFGInfo Info(M);
  std::vector<uint8_t> Tag(M.NumNodes, 0);
  for (int N = 0; N != M.NumNodes; ++N) {
    if (Ids[N].empty())
      continue; // Tag 0: unreached / empty set.
    Tag[N] = 1;
    if (N == M.Entry || Info.rpoNumber(N) <= 0 ||
        Info.predEdges(N).size() != 1)
      continue;
    int EIdx = Info.predEdges(N)[0];
    int From = M.Edges[EIdx].From;
    if (Ids[From].empty() || Info.rpoNumber(From) < 0 ||
        Info.rpoNumber(From) >= Info.rpoNumber(N))
      continue;
    std::set<support::InternId> Rebuilt;
    bool Prunable = true;
    for (support::InternId SId : Ids[From]) {
      bool Dead = false;
      tvla::Structure Out = T.apply(Pool.get(SId), EIdx, Dead, nullptr);
      if (Dead)
        continue;
      long Found = Pool.find(Out);
      if (Found < 0) {
        Prunable = false;
        break;
      }
      Rebuilt.insert(static_cast<support::InternId>(Found));
    }
    if (Prunable &&
        Rebuilt == std::set<support::InternId>(Ids[N].begin(), Ids[N].end()))
      Tag[N] = 2;
  }

  // Only structures some stored (tag 1) id list references go into the
  // unique table; ids are remapped to table order.
  std::vector<long> Remap(Pool.size(), -1);
  std::vector<support::InternId> Table;
  for (int N = 0; N != M.NumNodes; ++N) {
    if (Tag[N] != 1)
      continue;
    for (support::InternId Id : Ids[N])
      if (Remap[Id] < 0) {
        Remap[Id] = static_cast<long>(Table.size());
        Table.push_back(Id);
      }
  }

  Writer W;
  W.u8(Relational ? 1 : 0);
  W.u32(static_cast<uint32_t>(M.NumNodes));
  W.u32(static_cast<uint32_t>(V.Preds.size()));
  W.u32(static_cast<uint32_t>(T.checks().size()));
  W.u32(static_cast<uint32_t>(Table.size()));
  for (support::InternId Id : Table) {
    writeStructure(W, Pool.get(Id), V);
    ++C.StoredEntries;
  }
  for (int N = 0; N != M.NumNodes; ++N) {
    W.u8(Tag[N]);
    if (Tag[N] != 1)
      continue;
    W.u32(static_cast<uint32_t>(Ids[N].size()));
    for (support::InternId Id : Ids[N])
      W.u32(static_cast<uint32_t>(Remap[Id]));
  }
  C.Payload = W.take();
  C.seal();
  return C;
}

//===----------------------------------------------------------------------===//
// Allocation-site baseline
//===----------------------------------------------------------------------===//

Certificate cert::emitAllocSite(const cj::CFGMethod &M,
                                const core::BaselineAnnotation &Ann,
                                const core::BaselineResult &R) {
  Certificate C;
  C.Kind = CertKind::AllocSite;
  C.Unit = M.name();

  {
    uint32_t I = 0;
    for (const auto &[Site, Flagged] : R.Flagged) {
      if (!Flagged)
        C.Claims.push_back({I, core::CheckOutcome::Safe});
      ++I;
    }
  }

  Writer W;
  W.u32(static_cast<uint32_t>(M.NumNodes));
  writeLocSet(W, Ann.Multi);
  W.u32(static_cast<uint32_t>(R.Flagged.size()));
  for (const auto &[Site, Flagged] : R.Flagged) {
    (void)Flagged;
    W.u32(static_cast<uint32_t>(Site.Edge));
    W.u32(Site.ReqLoc.Line);
    W.u32(Site.ReqLoc.Col);
  }
  for (int N = 0; N != M.NumNodes; ++N) {
    if (!Ann.Reached[N]) {
      W.u8(0);
      continue;
    }
    ++C.RawEntries;
    ++C.StoredEntries;
    W.u8(1);
    writeAbsState(W, Ann.In[N]);
  }
  C.Payload = W.take();
  C.seal();
  return C;
}
