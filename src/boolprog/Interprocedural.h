//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive interprocedural SCMP certification (Section 8) as
/// a client of the shared IFDS solver (src/ifds/): exploded
/// reachability over facts "boolean variable may be 1" plus Lambda,
/// with procedure summaries.
///
/// Key ideas:
///  - Only "may the variable be 1" matters for certification (all update
///    formulas are positive disjunctions; requires checks consult
///    1-membership only), so the domain distributes over union and the
///    meet-over-all-valid-paths solution is exploded-supergraph
///    reachability — an IFDS problem.
///  - A callee can affect component objects it cannot name (e.g. calling
///    add() on a collection aliased with a caller-local iterator's set).
///    Each method is therefore analyzed over its variables *extended
///    with ghost variables* (two per component type) that stand for
///    arbitrary caller objects; the derived update rules quantify
///    uniformly over them. At call/return, caller facts are translated
///    through formals/actuals and per-tuple ghost instantiation, which
///    keeps the translation exact for predicates of arity <= 2. The
///    tuple assignment must stay consistent between the call and return
///    translations, which is why the problem supplies the combined
///    Problem::flowSummary composition.
///  - Every Potential verdict carries a shortest call/return-matched
///    witness path from the program entry, reconstructed from the
///    solver's predecessor records (ifds/Witness.h).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BOOLPROG_INTERPROCEDURAL_H
#define CANVAS_BOOLPROG_INTERPROCEDURAL_H

#include "boolprog/Analysis.h"
#include "boolprog/BooleanProgram.h"
#include "client/CFG.h"
#include "core/Verdict.h"
#include "wp/Abstraction.h"

#include <string>
#include <vector>

namespace canvas {
namespace bp {

/// Verdicts for every requires check in every method reachable from the
/// entry method, with witness traces on Potential verdicts.
struct InterResult {
  std::vector<core::CheckRecord> Checks;
  /// Worklist visits of the tabulation until the mutual fixpoint of all
  /// procedure summaries stabilized.
  unsigned SummaryIterations = 0;
  /// Distinct (procedure, node, fact) triples reached in the exploded
  /// supergraph.
  size_t ExplodedNodes = 0;
  size_t PathEdges = 0;
  size_t Summaries = 0;
  /// Wall-clock time spent reconstructing witness traces, microseconds.
  double WitnessMicros = 0;

  unsigned numFlagged() const;
  std::string str() const;
};

/// Analyzes the whole program rooted at \p Entry. Every client method
/// reachable through ClientCall edges is summarized context-sensitively.
/// \p Cancel, when given, bounds the tabulation (see support/Budget.h).
InterResult analyzeInterproc(const wp::DerivedAbstraction &Abs,
                             const cj::ClientCFG &CFG,
                             const cj::CFGMethod &Entry,
                             DiagnosticEngine &Diags,
                             support::CancelToken *Cancel = nullptr);

} // namespace bp
} // namespace canvas

#endif // CANVAS_BOOLPROG_INTERPROCEDURAL_H
