//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive interprocedural SCMP certification (Section 8):
/// a functional (summary-based) formulation that computes the
/// meet-over-all-valid-paths "may-be-1" solution in polynomial time.
///
/// Key ideas:
///  - Only "may the variable be 1" matters for certification (all update
///    formulas are positive disjunctions; requires checks consult
///    1-membership only), so procedure summaries are relations from
///    entry facts to exit facts — an IFDS-style exploded reachability.
///  - A callee can affect component objects it cannot name (e.g. calling
///    add() on a collection aliased with a caller-local iterator's set).
///    Each method is therefore analyzed over its variables *extended
///    with ghost variables* (two per component type) that stand for
///    arbitrary caller objects; the derived update rules quantify
///    uniformly over them. At call/return, caller facts are translated
///    through formals/actuals and per-tuple ghost instantiation, which
///    keeps the translation exact for predicates of arity <= 2.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BOOLPROG_INTERPROCEDURAL_H
#define CANVAS_BOOLPROG_INTERPROCEDURAL_H

#include "boolprog/Analysis.h"
#include "boolprog/BooleanProgram.h"
#include "client/CFG.h"
#include "wp/Abstraction.h"

#include <map>
#include <string>
#include <vector>

namespace canvas {
namespace bp {

/// Verdicts for every requires check in every method reachable from the
/// entry method.
struct InterResult {
  struct CheckVerdict {
    const cj::CFGMethod *Method = nullptr;
    SourceLoc Loc;
    std::string What;
    CheckOutcome Outcome; ///< Safe / Potential / Unreachable (the
                          ///< interprocedural analysis does not
                          ///< classify Definite).
  };
  std::vector<CheckVerdict> Checks;
  /// Summary recomputations until the mutual fixpoint stabilized.
  unsigned SummaryIterations = 0;

  unsigned numFlagged() const;
  std::string str() const;
};

/// Analyzes the whole program rooted at \p Entry. Every client method
/// reachable through ClientCall edges is summarized context-sensitively.
InterResult analyzeInterproc(const wp::DerivedAbstraction &Abs,
                             const cj::ClientCFG &CFG,
                             const cj::CFGMethod &Entry,
                             DiagnosticEngine &Diags);

} // namespace bp
} // namespace canvas

#endif // CANVAS_BOOLPROG_INTERPROCEDURAL_H
