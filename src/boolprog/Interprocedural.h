//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive interprocedural SCMP certification (Section 8) as
/// a client of the shared IFDS solver (src/ifds/): exploded
/// reachability over facts "boolean variable may be 1" plus Lambda,
/// with procedure summaries.
///
/// Key ideas:
///  - Only "may the variable be 1" matters for certification (all update
///    formulas are positive disjunctions; requires checks consult
///    1-membership only), so the domain distributes over union and the
///    meet-over-all-valid-paths solution is exploded-supergraph
///    reachability — an IFDS problem.
///  - A callee can affect component objects it cannot name (e.g. calling
///    add() on a collection aliased with a caller-local iterator's set).
///    Each method is therefore analyzed over its variables *extended
///    with ghost variables* (two per component type) that stand for
///    arbitrary caller objects; the derived update rules quantify
///    uniformly over them. At call/return, caller facts are translated
///    through formals/actuals and per-tuple ghost instantiation, which
///    keeps the translation exact for predicates of arity <= 2. The
///    tuple assignment must stay consistent between the call and return
///    translations, which is why the problem supplies the combined
///    Problem::flowSummary composition.
///  - Every Potential verdict carries a shortest call/return-matched
///    witness path from the program entry, reconstructed from the
///    solver's predecessor records (ifds/Witness.h).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BOOLPROG_INTERPROCEDURAL_H
#define CANVAS_BOOLPROG_INTERPROCEDURAL_H

#include "boolprog/Analysis.h"
#include "boolprog/BooleanProgram.h"
#include "client/CFG.h"
#include "core/Verdict.h"
#include "ifds/Problem.h"
#include "wp/Abstraction.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace canvas {
namespace bp {

namespace detail {
class InterprocProblem;
}

struct InterResult;

/// The interprocedural IFDS model: ghost-extended CFGs, their boolean
/// programs, and the exploded flow functions — everything derived from
/// the trusted inputs (abstraction + client CFG), independent of any
/// tabulation. Built once and shared between the solver-driven analysis
/// and the proof-carrying-certificate checker (cert::Checker), which
/// re-validates a claimed path-edge set against problem()'s flow
/// functions without running the worklist.
class InterprocModel {
public:
  InterprocModel(const wp::DerivedAbstraction &Abs, const cj::ClientCFG &CFG,
                 const cj::CFGMethod &Entry, DiagnosticEngine &Diags);
  ~InterprocModel();
  InterprocModel(InterprocModel &&) noexcept;
  InterprocModel &operator=(InterprocModel &&) noexcept;

  const ifds::Problem &problem() const;

  /// One requires check anchored in the exploded supergraph: the
  /// verdict is decided by genuine reachability of (Proc, Node, fact),
  /// where the fact is 1+Var (or Lambda when Var < 0: the check is
  /// constant and ConstantViolated decides it).
  struct Anchor {
    std::string Method;
    SourceLoc Loc;
    SourceLoc ReqLoc;
    std::string What;
    int Proc = -1;
    int Node = -1; ///< Ext-CFG node guarding the check's edge.
    int Var = -1;  ///< Boolean-program variable, -1 = constant check.
    bool ConstantViolated = false;
  };
  const std::vector<Anchor> &anchors() const;

private:
  friend InterResult analyzeInterproc(const InterprocModel &Model,
                                      support::CancelToken *Cancel,
                                      struct IfdsTabulation *TabOut);
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The tabulation evidence of one interprocedural solve, in the shape a
/// proof-carrying certificate serializes: the full path-edge set plus
/// the genuine (procedure, entry fact) relation. Closure of this data
/// under the model's flow functions proves it over-approximates the
/// least IFDS solution, so the absence of a genuine path edge at a
/// check's anchor certifies its Safe/Unreachable verdict.
struct IfdsTabulation {
  struct PE {
    int Proc = -1;
    int EntryFact = -1;
    int Node = -1;
    int Fact = -1;
  };
  std::vector<PE> PathEdges;
  std::vector<std::pair<int, int>> Genuine; ///< (proc, entry fact).
};

/// Verdicts for every requires check in every method reachable from the
/// entry method, with witness traces on Potential verdicts.
struct InterResult {
  std::vector<core::CheckRecord> Checks;
  /// Worklist visits of the tabulation until the mutual fixpoint of all
  /// procedure summaries stabilized.
  unsigned SummaryIterations = 0;
  /// Distinct (procedure, node, fact) triples reached in the exploded
  /// supergraph.
  size_t ExplodedNodes = 0;
  size_t PathEdges = 0;
  size_t Summaries = 0;
  /// Wall-clock time spent reconstructing witness traces, microseconds.
  double WitnessMicros = 0;

  unsigned numFlagged() const;
  std::string str() const;
};

/// Analyzes the whole program rooted at \p Entry. Every client method
/// reachable through ClientCall edges is summarized context-sensitively.
/// \p Cancel, when given, bounds the tabulation (see support/Budget.h).
InterResult analyzeInterproc(const wp::DerivedAbstraction &Abs,
                             const cj::ClientCFG &CFG,
                             const cj::CFGMethod &Entry,
                             DiagnosticEngine &Diags,
                             support::CancelToken *Cancel = nullptr);

/// As above, over a prebuilt model. When \p TabOut is non-null it
/// receives the solver's tabulation evidence for certificate emission.
InterResult analyzeInterproc(const InterprocModel &Model,
                             support::CancelToken *Cancel = nullptr,
                             IfdsTabulation *TabOut = nullptr);

} // namespace bp
} // namespace canvas

#endif // CANVAS_BOOLPROG_INTERPROCEDURAL_H
