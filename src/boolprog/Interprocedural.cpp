#include "boolprog/Interprocedural.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <array>
#include <deque>
#include <set>

using namespace canvas;
using namespace canvas::bp;
using namespace canvas::wp;

unsigned InterResult::numFlagged() const {
  unsigned N = 0;
  for (const CheckVerdict &C : Checks)
    N += C.Outcome == CheckOutcome::Potential ||
         C.Outcome == CheckOutcome::Definite;
  return N;
}

std::string InterResult::str() const {
  std::string Out;
  for (const CheckVerdict &C : Checks) {
    const char *O = "?";
    switch (C.Outcome) {
    case CheckOutcome::Safe:
      O = "verified";
      break;
    case CheckOutcome::Potential:
      O = "POTENTIAL VIOLATION";
      break;
    case CheckOutcome::Definite:
      O = "DEFINITE VIOLATION";
      break;
    case CheckOutcome::Unreachable:
      O = "unreachable";
      break;
    }
    Out += C.Method->name() + " " + C.Loc.str() + ": " + C.What + ": " + O +
           "\n";
  }
  return Out;
}

namespace {

/// Entry-fact dependence set: boolvar indices at method entry, or
/// Lambda (-1) for "unconditionally may-be-1".
constexpr int Lambda = -1;
using DepSet = std::set<int>;

/// Per-method analysis artifacts.
struct MethodInfo {
  const cj::CFGMethod *Orig = nullptr;
  /// CFG copy with ghost variables appended to CompVars.
  cj::CFGMethod Ext;
  BooleanProgram BP;
  /// Ghost variable names per component type (two each).
  std::map<std::string, std::array<std::string, 2>> Ghosts;
  /// Canonical body -> BP var index.
  std::map<std::string, int> VarIdx;
  /// R[node][var]: entry facts whose 1-ness implies var may be 1 at
  /// node.
  std::vector<std::vector<DepSet>> R;
  std::vector<bool> Reached;
  /// Summary: R at the exit node.
  std::vector<DepSet> Summary;
  /// Phase 2: entry vars that may be 1 in some calling context.
  std::set<int> EntryMay1;
  bool Callable = false; ///< Reachable from the entry method.
};

class InterprocAnalysis {
public:
  InterprocAnalysis(const DerivedAbstraction &Abs, const cj::ClientCFG &CFG,
                    const cj::CFGMethod &Entry, DiagnosticEngine &Diags)
      : Abs(Abs), CFG(CFG), Entry(Entry), Diags(Diags) {}

  InterResult run() {
    buildMethodInfos();
    computeSummaries();
    propagateEntryFacts();
    return report();
  }

private:
  /// Component types mentioned by any predicate family.
  std::vector<std::string> relevantTypes() const {
    std::vector<std::string> Ts;
    for (const PredicateFamily &F : Abs.Families)
      for (const std::string &T : F.VarTypes)
        if (std::find(Ts.begin(), Ts.end(), T) == Ts.end())
          Ts.push_back(T);
    return Ts;
  }

  void buildMethodInfos() {
    std::vector<std::string> Types = relevantTypes();
    for (const cj::CFGMethod &M : CFG.Methods) {
      MethodInfo Info;
      Info.Orig = &M;
      Info.Ext = M; // Copy; Edges/CompVars are value types.
      for (const std::string &T : Types) {
        std::array<std::string, 2> Names = {"$g0$" + T, "$g1$" + T};
        for (const std::string &G : Names)
          Info.Ext.CompVars.emplace_back(G, T);
        Info.Ghosts.emplace(T, Names);
      }
      Infos.push_back(std::move(Info));
    }
    for (MethodInfo &Info : Infos) {
      Info.BP = buildBooleanProgram(Abs, Info.Ext, Diags);
      for (size_t V = 0; V != Info.BP.Vars.size(); ++V)
        Info.VarIdx.emplace(Info.BP.Vars[V].Name, static_cast<int>(V));
      Info.Summary.assign(Info.BP.Vars.size(), {});
    }
  }

  MethodInfo *infoOf(const cj::CMethod *M) {
    for (MethodInfo &Info : Infos)
      if (Info.Orig->Method == M)
        return &Info;
    return nullptr;
  }

  MethodInfo *infoOf(const cj::CFGMethod &M) {
    for (MethodInfo &Info : Infos)
      if (Info.Orig == &M)
        return &Info;
    return nullptr;
  }

  static bool isGhost(const std::string &Name) {
    return Name.size() > 3 && Name[0] == '$' && Name[1] == 'g';
  }

  std::string typeOfVarIn(const MethodInfo &Info, const std::string &V) {
    for (const auto &[Name, T] : Info.Ext.CompVars)
      if (Name == V)
        return T;
    return "";
  }

  //===------------------------------------------------------------------===//
  // Call-site translation
  //===------------------------------------------------------------------===//

  /// Caller-to-callee renaming of one variable tuple: actuals become
  /// formals, the call result becomes $ret, everything else becomes a
  /// ghost (at most two distinct ghosts per type).
  struct TupleMap {
    std::vector<std::string> CalleeArgs;
    /// Ghost name -> caller variable, for the inverse translation.
    std::map<std::string, std::string> GhostToCaller;
  };

  bool mapTuple(const MethodInfo &Caller, const MethodInfo &Callee,
                const cj::Action &Call, const std::vector<std::string> &Args,
                TupleMap &Out) {
    std::map<std::string, unsigned> GhostsUsed;
    std::map<std::string, std::string> Assigned;
    for (const std::string &A : Args) {
      auto It = Assigned.find(A);
      if (It != Assigned.end()) {
        Out.CalleeArgs.push_back(It->second);
        continue;
      }
      std::string Mapped;
      if (!Call.Lhs.empty() && A == Call.Lhs) {
        Mapped = "$ret";
      } else {
        for (size_t I = 0; I != Call.Args.size() &&
                           I != Call.CalleeMethod->Params.size();
             ++I)
          if (Call.Args[I] == A && !Call.Args[I].empty()) {
            Mapped = Call.CalleeMethod->Params[I].Name;
            break;
          }
      }
      if (Mapped.empty()) {
        std::string T = typeOfVarIn(Caller, A);
        auto GIt = Callee.Ghosts.find(T);
        if (GIt == Callee.Ghosts.end())
          return false;
        unsigned &Used = GhostsUsed[T];
        if (Used >= 2)
          return false;
        Mapped = GIt->second[Used++];
        Out.GhostToCaller[Mapped] = A;
      }
      Assigned.emplace(A, Mapped);
      Out.CalleeArgs.push_back(Mapped);
    }
    return true;
  }

  /// Looks up the boolvar for (Family, Args) in \p Info. Returns 0 for
  /// constant-false, 1 for constant-true (or unknown, conservatively),
  /// 2 for a variable (set in \p VarOut).
  int instantiateIn(const MethodInfo &Info, int Family,
                    const std::vector<std::string> &Args, int &VarOut) {
    const PredicateFamily &Fam = Abs.Families[Family];
    Conjunction Body;
    switch (instantiateFamily(Fam, Args, Fam.VarTypes, Body)) {
    case InstResult::False:
      return 0;
    case InstResult::True:
      return 1;
    case InstResult::Conj:
      break;
    }
    auto It = Info.VarIdx.find(conjunctionStr(Body));
    if (It == Info.VarIdx.end())
      return 1; // Unknown instance: conservative.
    VarOut = It->second;
    return 2;
  }

  /// Translates a callee entry fact back into caller dependences under
  /// the per-tuple ghost assignment, composing with the caller relation
  /// at the call site.
  void translateEntryFactBack(const MethodInfo &Caller,
                              const MethodInfo &Callee,
                              const cj::Action &Call, const TupleMap &TM,
                              int CalleeFact,
                              const std::vector<DepSet> &CallerState,
                              DepSet &Out) {
    const BoolVar &BV = Callee.BP.Vars[CalleeFact];
    std::vector<std::string> CallerArgs(BV.Args.size());
    for (size_t I = 0; I != BV.Args.size(); ++I) {
      const std::string &V = BV.Args[I];
      auto GIt = TM.GhostToCaller.find(V);
      if (GIt != TM.GhostToCaller.end()) {
        CallerArgs[I] = GIt->second;
        continue;
      }
      bool Found = false;
      for (size_t P = 0; P != Call.CalleeMethod->Params.size() &&
                         P != Call.Args.size();
           ++P)
        if (Call.CalleeMethod->Params[P].Name == V && !Call.Args[P].empty()) {
          CallerArgs[I] = Call.Args[P];
          Found = true;
          break;
        }
      if (!Found) {
        // A callee local, $ret, an unbound formal, or a callee ghost not
        // in this tuple's assignment: uninitialized/arbitrary at callee
        // entry, hence unconditionally may-be-1.
        Out.insert(Lambda);
        return;
      }
    }
    int CallerVar = -1;
    switch (instantiateIn(Caller, BV.Family, CallerArgs, CallerVar)) {
    case 0:
      return; // Constant-false at entry: contributes nothing.
    case 1:
      Out.insert(Lambda);
      return;
    default:
      break;
    }
    const DepSet &D = CallerState[CallerVar];
    Out.insert(D.begin(), D.end());
  }

  /// The relation transfer for one ClientCall edge.
  std::vector<DepSet> composeCall(const MethodInfo &Caller,
                                  const cj::Action &Call,
                                  const std::vector<DepSet> &CallerState) {
    MethodInfo *Callee = infoOf(Call.CalleeMethod);
    std::vector<DepSet> Out(CallerState.size());
    if (!Callee) {
      for (DepSet &D : Out)
        D = {Lambda};
      return Out;
    }
    for (size_t B = 0; B != Caller.BP.Vars.size(); ++B) {
      const BoolVar &BV = Caller.BP.Vars[B];
      TupleMap TM;
      if (!mapTuple(Caller, *Callee, Call, BV.Args, TM)) {
        Out[B] = {Lambda};
        continue;
      }
      int CalleeVar = -1;
      if (instantiateIn(*Callee, BV.Family, TM.CalleeArgs, CalleeVar) != 2) {
        // Injective renaming preserves constant-ness; if we land on a
        // constant or unknown instance, stay conservative.
        Out[B] = {Lambda};
        continue;
      }
      DepSet D;
      for (int E : Callee->Summary[CalleeVar]) {
        if (E == Lambda) {
          D.insert(Lambda);
          continue;
        }
        translateEntryFactBack(Caller, *Callee, Call, TM, E, CallerState, D);
      }
      Out[B] = std::move(D);
    }
    return Out;
  }

  //===------------------------------------------------------------------===//
  // Phase 1: summaries
  //===------------------------------------------------------------------===//

  /// Recomputes the relation fixpoint of \p Info under current callee
  /// summaries; returns true when its summary changed.
  bool recomputeMethod(MethodInfo &Info) {
    const cj::CFGMethod &M = Info.Ext;
    size_t NVars = Info.BP.Vars.size();
    Info.R.assign(M.NumNodes, {});
    Info.Reached.assign(M.NumNodes, false);
    Info.R[M.Entry].resize(NVars);
    for (size_t V = 0; V != NVars; ++V)
      Info.R[M.Entry][V] = {static_cast<int>(V)};
    Info.Reached[M.Entry] = true;

    std::vector<std::vector<int>> OutEdges(M.NumNodes);
    for (size_t E = 0; E != M.Edges.size(); ++E)
      OutEdges[M.Edges[E].From].push_back(static_cast<int>(E));

    std::deque<int> Worklist{M.Entry};
    std::vector<bool> Queued(M.NumNodes, false);
    Queued[M.Entry] = true;
    while (!Worklist.empty()) {
      int N = Worklist.front();
      Worklist.pop_front();
      Queued[N] = false;
      for (int EIdx : OutEdges[N]) {
        const cj::CFGEdge &E = M.Edges[EIdx];
        std::vector<DepSet> OutState;
        if (E.Act.K == cj::Action::Kind::ClientCall) {
          OutState = composeCall(Info, E.Act, Info.R[N]);
        } else {
          OutState = Info.R[N];
          for (const auto &[Tgt, Rhs] : Info.BP.EdgeAssignments[EIdx]) {
            DepSet D;
            switch (Rhs.K) {
            case BoolRhs::Kind::Const:
              if (Rhs.PlusOne)
                D.insert(Lambda);
              break;
            case BoolRhs::Kind::Unknown:
              D.insert(Lambda);
              break;
            case BoolRhs::Kind::Or:
              if (Rhs.PlusOne)
                D.insert(Lambda);
              for (int S : Rhs.Sources) {
                const DepSet &SD = Info.R[N][S];
                D.insert(SD.begin(), SD.end());
              }
              break;
            }
            OutState[Tgt] = std::move(D);
          }
        }
        bool Changed = false;
        if (!Info.Reached[E.To]) {
          Info.R[E.To] = std::move(OutState);
          Info.Reached[E.To] = true;
          Changed = true;
        } else {
          for (size_t V = 0; V != NVars; ++V)
            for (int D : OutState[V])
              Changed |= Info.R[E.To][V].insert(D).second;
        }
        if (Changed && !Queued[E.To]) {
          Queued[E.To] = true;
          Worklist.push_back(E.To);
        }
      }
    }

    std::vector<DepSet> NewSummary = Info.Reached[M.Exit]
                                         ? Info.R[M.Exit]
                                         : std::vector<DepSet>(NVars);
    if (NewSummary == Info.Summary)
      return false;
    Info.Summary = std::move(NewSummary);
    return true;
  }

  void computeSummaries() {
    std::map<const MethodInfo *, std::set<MethodInfo *>> Callers;
    for (MethodInfo &Info : Infos)
      for (const cj::CFGEdge &E : Info.Ext.Edges)
        if (E.Act.K == cj::Action::Kind::ClientCall)
          if (MethodInfo *Callee = infoOf(E.Act.CalleeMethod))
            Callers[Callee].insert(&Info);

    std::deque<MethodInfo *> Worklist;
    for (MethodInfo &Info : Infos)
      Worklist.push_back(&Info);
    std::set<MethodInfo *> Queued(Worklist.begin(), Worklist.end());
    while (!Worklist.empty()) {
      MethodInfo *Info = Worklist.front();
      Worklist.pop_front();
      Queued.erase(Info);
      ++Result.SummaryIterations;
      if (!recomputeMethod(*Info))
        continue;
      for (MethodInfo *Caller : Callers[Info])
        if (Queued.insert(Caller).second)
          Worklist.push_back(Caller);
    }
  }

  //===------------------------------------------------------------------===//
  // Phase 2: entry-fact propagation
  //===------------------------------------------------------------------===//

  bool may1At(const MethodInfo &Info, int Node, int Var) {
    if (!Info.Reached[Node])
      return false;
    for (int D : Info.R[Node][Var]) {
      if (D == Lambda || Info.EntryMay1.count(D))
        return true;
    }
    return false;
  }

  void propagateEntryFacts() {
    MethodInfo *EntryInfo = infoOf(Entry);
    if (!EntryInfo)
      return;
    EntryInfo->Callable = true;
    // The entry method's variables are unconstrained at entry.
    for (size_t V = 0; V != EntryInfo->BP.Vars.size(); ++V)
      EntryInfo->EntryMay1.insert(static_cast<int>(V));

    std::deque<MethodInfo *> Worklist{EntryInfo};
    std::set<MethodInfo *> Queued{EntryInfo};
    while (!Worklist.empty()) {
      MethodInfo *Caller = Worklist.front();
      Worklist.pop_front();
      Queued.erase(Caller);
      for (size_t EIdx = 0; EIdx != Caller->Ext.Edges.size(); ++EIdx) {
        const cj::CFGEdge &E = Caller->Ext.Edges[EIdx];
        if (E.Act.K != cj::Action::Kind::ClientCall)
          continue;
        if (!Caller->Reached[E.From])
          continue;
        MethodInfo *Callee = infoOf(E.Act.CalleeMethod);
        if (!Callee)
          continue;
        bool Changed = !Callee->Callable;
        Callee->Callable = true;
        for (size_t BC = 0; BC != Callee->BP.Vars.size(); ++BC) {
          if (Callee->EntryMay1.count(static_cast<int>(BC)))
            continue;
          if (calleeEntryFactMay1(*Caller, *Callee, E.Act, E.From,
                                  static_cast<int>(BC))) {
            Callee->EntryMay1.insert(static_cast<int>(BC));
            Changed = true;
          }
        }
        if (Changed && Queued.insert(Callee).second)
          Worklist.push_back(Callee);
      }
    }
  }

  /// May the callee entry fact \p CalleeFact be 1 for some caller
  /// instantiation at this call site?
  bool calleeEntryFactMay1(MethodInfo &Caller, MethodInfo &Callee,
                           const cj::Action &Call, int FromNode,
                           int CalleeFact) {
    const BoolVar &BV = Callee.BP.Vars[CalleeFact];
    std::vector<std::vector<std::string>> Cands(BV.Args.size());
    for (size_t I = 0; I != BV.Args.size(); ++I) {
      const std::string &V = BV.Args[I];
      if (isGhost(V)) {
        // An arbitrary caller object of the slot's type.
        const PredicateFamily &Fam = Abs.Families[BV.Family];
        for (const auto &[Name, T] : Caller.Ext.CompVars)
          if (T == Fam.VarTypes[I])
            Cands[I].push_back(Name);
        if (Cands[I].empty())
          return false;
        continue;
      }
      bool IsFormal = false;
      for (size_t P = 0; P != Call.CalleeMethod->Params.size() &&
                         P != Call.Args.size();
           ++P)
        if (Call.CalleeMethod->Params[P].Name == V) {
          if (Call.Args[P].empty())
            return true; // Unknown actual: conservative.
          Cands[I] = {Call.Args[P]};
          IsFormal = true;
          break;
        }
      if (!IsFormal)
        return true; // Callee local / $ret: uninitialized at entry.
    }
    // Enumerate candidate tuples (arity <= 2 keeps this tiny).
    std::vector<size_t> Idx(BV.Args.size(), 0);
    while (true) {
      std::vector<std::string> Tuple(BV.Args.size());
      for (size_t I = 0; I != Idx.size(); ++I)
        Tuple[I] = Cands[I][Idx[I]];
      int CallerVar = -1;
      switch (instantiateIn(Caller, BV.Family, Tuple, CallerVar)) {
      case 1:
        return true;
      case 2:
        if (may1At(Caller, FromNode, CallerVar))
          return true;
        break;
      default:
        break;
      }
      size_t I = 0;
      for (; I != Idx.size(); ++I) {
        if (++Idx[I] < Cands[I].size())
          break;
        Idx[I] = 0;
      }
      if (I == Idx.size())
        return false;
    }
  }

  //===------------------------------------------------------------------===//
  // Phase 3: check evaluation
  //===------------------------------------------------------------------===//

  InterResult report() {
    for (MethodInfo &Info : Infos) {
      if (!Info.Callable)
        continue;
      for (const Check &C : Info.BP.Checks) {
        InterResult::CheckVerdict V;
        V.Method = Info.Orig;
        V.Loc = C.Loc;
        V.What = C.What;
        int From = Info.Ext.Edges[C.Edge].From;
        if (!Info.Reached[From]) {
          V.Outcome = CheckOutcome::Unreachable;
        } else if (C.Var < 0) {
          V.Outcome = C.ConstantViolated ? CheckOutcome::Potential
                                         : CheckOutcome::Safe;
        } else {
          V.Outcome = may1At(Info, From, C.Var) ? CheckOutcome::Potential
                                                : CheckOutcome::Safe;
        }
        Result.Checks.push_back(std::move(V));
      }
    }
    return std::move(Result);
  }

  const DerivedAbstraction &Abs;
  const cj::ClientCFG &CFG;
  const cj::CFGMethod &Entry;
  DiagnosticEngine &Diags;
  std::vector<MethodInfo> Infos;
  InterResult Result;
};

} // namespace

InterResult bp::analyzeInterproc(const DerivedAbstraction &Abs,
                                 const cj::ClientCFG &CFG,
                                 const cj::CFGMethod &Entry,
                                 DiagnosticEngine &Diags) {
  return InterprocAnalysis(Abs, CFG, Entry, Diags).run();
}
