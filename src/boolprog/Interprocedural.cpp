#include "boolprog/Interprocedural.h"

#include "boolprog/Witness.h"
#include "ifds/Solver.h"
#include "ifds/Witness.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <set>

using namespace canvas;
using namespace canvas::bp;
using namespace canvas::wp;

unsigned InterResult::numFlagged() const {
  unsigned N = 0;
  for (const core::CheckRecord &C : Checks)
    N += C.Outcome == CheckOutcome::Potential ||
         C.Outcome == CheckOutcome::Definite;
  return N;
}

std::string InterResult::str() const {
  std::string Out;
  for (const core::CheckRecord &C : Checks) {
    Out += C.Method + " " + C.Loc.str() + ": " + C.What + ": " +
           core::outcomeStr(C.Outcome) + "\n";
    if (!C.Witness.empty())
      Out += C.Witness.str();
  }
  return Out;
}

// Not an anonymous namespace: InterprocModel::Impl (externally visible)
// holds an InterprocProblem member, and GCC's -Wsubobject-linkage fires
// on internal-linkage subobjects of external-linkage types.
namespace canvas {
namespace bp {
namespace detail {

/// Per-method analysis artifacts: the ghost-extended CFG, its boolean
/// program, and the exploded-edge reading of the program's assignments.
struct MethodInfo {
  const cj::CFGMethod *Orig = nullptr;
  /// CFG copy with ghost variables appended to CompVars.
  cj::CFGMethod Ext;
  BooleanProgram BP;
  /// Ghost variable names per component type (two each).
  std::map<std::string, std::array<std::string, 2>> Ghosts;
  /// Canonical body -> BP var index.
  std::map<std::string, int> VarIdx;
  std::vector<EdgeFlow> Flows;
};

/// Caller-to-callee renaming of one variable tuple: actuals become
/// formals, the call result becomes $ret, everything else becomes a
/// ghost (at most two distinct ghosts per type).
struct TupleMap {
  std::vector<std::string> CalleeArgs;
  /// Ghost name -> caller variable, for the inverse translation.
  std::map<std::string, std::string> GhostToCaller;
};

/// Precomputed call-site translation tables for one ClientCall edge
/// with a known callee. Facts are 0 = Lambda, 1+v = boolean variable v.
struct CallTable {
  int Callee = -1;
  const cj::Action *Call = nullptr;
  /// FeedOut[caller fact] -> callee entry facts it genuinely feeds
  /// (the inverted calleeEntryFactMay1 relation).
  std::vector<std::vector<int>> FeedOut;
  /// Caller vars whose tuple is not mappable into the callee: they
  /// flow Lambda -> 1+B across the call unconditionally.
  std::vector<int> Bypass;
  /// Callee var c -> caller vars B whose tuple maps onto c.
  std::map<int, std::vector<int>> SummaryTargets;
  /// Tuple map per mapped caller var.
  std::map<int, TupleMap> TMs;
  /// Memoized return-translation feeders per (caller var B, callee
  /// entry var e): caller facts whose 1-ness lets summary entry fact
  /// 1+e contribute to 1+B.
  mutable std::map<std::pair<int, int>, std::vector<int>> Feeders;
};

class InterprocProblem : public ifds::Problem {
public:
  InterprocProblem(const DerivedAbstraction &Abs, const cj::ClientCFG &CFG,
                   const cj::CFGMethod &Entry, DiagnosticEngine &Diags)
      : Abs(Abs) {
    build(CFG, Entry, Diags);
  }

  //===--- ifds::Problem -------------------------------------------------===//

  int numProcs() const override { return static_cast<int>(Infos.size()); }
  const ifds::ProcView &proc(int P) const override { return Views[P]; }
  int entryProc() const override { return EntryIdx; }
  int numFacts(int P) const override {
    return 1 + static_cast<int>(Infos[P].BP.Vars.size());
  }

  void initialFacts(std::vector<int> &Out) const override {
    // The entry method's variables are unconstrained at entry.
    for (int F = 0; F != numFacts(EntryIdx); ++F)
      Out.push_back(F);
  }

  void flowNormal(int P, int Edge, int Fact,
                  std::vector<int> &Out) const override {
    // Covers plain edges and ClientCall edges with an unknown callee,
    // whose boolean-program lowering is a clobber of every fact.
    applyEdgeFlow(Infos[P].Flows[Edge], Fact, nullptr, Out);
  }

  void flowCall(int P, int Edge, int Fact,
                std::vector<int> &Out) const override {
    const CallTable &CT = Tables[P].at(Edge);
    Out = CT.FeedOut[Fact];
  }

  void flowCallToReturn(int P, int Edge, int Fact,
                        std::vector<int> &Out) const override {
    if (Fact != ifds::LambdaFact)
      return;
    const CallTable &CT = Tables[P].at(Edge);
    Out.push_back(ifds::LambdaFact);
    for (int B : CT.Bypass)
      Out.push_back(1 + B);
  }

  void flowSummary(int P, int Edge, int Fact, int CalleeEntryFact,
                   int CalleeExitFact, std::vector<int> &Out) const override {
    if (CalleeExitFact == ifds::LambdaFact)
      return; // Reachability crosses via flowCallToReturn.
    const CallTable &CT = Tables[P].at(Edge);
    auto It = CT.SummaryTargets.find(CalleeExitFact - 1);
    if (It == CT.SummaryTargets.end())
      return;
    for (int B : It->second) {
      if (CalleeEntryFact == ifds::LambdaFact) {
        // An unconditional callee fact: flows whenever the call site
        // is reached.
        if (Fact == ifds::LambdaFact)
          Out.push_back(1 + B);
        continue;
      }
      const std::vector<int> &F =
          feedersOf(P, CT, B, CalleeEntryFact - 1);
      if (std::find(F.begin(), F.end(), Fact) != F.end())
        Out.push_back(1 + B);
    }
  }

  //===--- verdict/witness accessors -------------------------------------===//

  const std::vector<MethodInfo> &infos() const { return Infos; }

private:
  void build(const cj::ClientCFG &CFG, const cj::CFGMethod &Entry,
             DiagnosticEngine &Diags);
  void buildCallTable(int CallerIdx, int EdgeIdx, const cj::Action &Call,
                      int CalleeIdx);

  int indexOf(const cj::CMethod *M) const {
    for (size_t I = 0; I != Infos.size(); ++I)
      if (Infos[I].Orig->Method == M)
        return static_cast<int>(I);
    return -1;
  }

  static bool isGhost(const std::string &Name) {
    return Name.size() > 3 && Name[0] == '$' && Name[1] == 'g';
  }

  static std::string typeOfVarIn(const MethodInfo &Info,
                                 const std::string &V) {
    for (const auto &[Name, T] : Info.Ext.CompVars)
      if (Name == V)
        return T;
    return "";
  }

  bool mapTuple(const MethodInfo &Caller, const MethodInfo &Callee,
                const cj::Action &Call, const std::vector<std::string> &Args,
                TupleMap &Out) const;

  /// Looks up the boolvar for (Family, Args) in \p Info. Returns 0 for
  /// constant-false, 1 for constant-true (or unknown, conservatively),
  /// 2 for a variable (set in \p VarOut).
  int instantiateIn(const MethodInfo &Info, int Family,
                    const std::vector<std::string> &Args, int &VarOut) const;

  /// Caller facts genuinely feeding callee entry fact 1+e at this call
  /// site: the inverted per-tuple enumeration of the functional engine
  /// (slot order matters — the first decisive slot wins, matching the
  /// original formulation exactly).
  std::vector<int> factFeeders(const MethodInfo &Caller,
                               const MethodInfo &Callee,
                               const cj::Action &Call, int CalleeFact) const;

  /// Caller facts through which summary entry fact 1+e reaches caller
  /// var B at return: the translate-back of the functional engine.
  const std::vector<int> &feedersOf(int CallerIdx, const CallTable &CT,
                                    int B, int CalleeEntryVar) const;

  const DerivedAbstraction &Abs;
  std::vector<MethodInfo> Infos;
  std::vector<ifds::ProcView> Views;
  /// Per (proc, edge) call tables for known-callee ClientCall edges.
  std::vector<std::map<int, CallTable>> Tables;
  int EntryIdx = -1;
};

void InterprocProblem::build(const cj::ClientCFG &CFG,
                             const cj::CFGMethod &Entry,
                             DiagnosticEngine &Diags) {
  // Component types mentioned by any predicate family.
  std::vector<std::string> Types;
  for (const PredicateFamily &F : Abs.Families)
    for (const std::string &T : F.VarTypes)
      if (std::find(Types.begin(), Types.end(), T) == Types.end())
        Types.push_back(T);

  for (const cj::CFGMethod &M : CFG.Methods) {
    MethodInfo Info;
    Info.Orig = &M;
    Info.Ext = M; // Copy; Edges/CompVars are value types.
    for (const std::string &T : Types) {
      std::array<std::string, 2> Names = {"$g0$" + T, "$g1$" + T};
      for (const std::string &G : Names)
        Info.Ext.CompVars.emplace_back(G, T);
      Info.Ghosts.emplace(T, Names);
    }
    if (&M == &Entry)
      EntryIdx = static_cast<int>(Infos.size());
    Infos.push_back(std::move(Info));
  }
  for (MethodInfo &Info : Infos) {
    Info.BP = buildBooleanProgram(Abs, Info.Ext, Diags);
    for (size_t V = 0; V != Info.BP.Vars.size(); ++V)
      Info.VarIdx.emplace(Info.BP.Vars[V].Name, static_cast<int>(V));
    Info.Flows = computeEdgeFlows(Info.BP);
  }

  Views.resize(Infos.size());
  Tables.resize(Infos.size());
  for (size_t P = 0; P != Infos.size(); ++P) {
    const cj::CFGMethod &M = Infos[P].Ext;
    ifds::ProcView &V = Views[P];
    V.Entry = M.Entry;
    V.Exit = M.Exit;
    V.NumNodes = M.NumNodes;
    for (size_t E = 0; E != M.Edges.size(); ++E) {
      const cj::CFGEdge &Edge = M.Edges[E];
      int Callee = -1;
      if (Edge.Act.K == cj::Action::Kind::ClientCall)
        Callee = indexOf(Edge.Act.CalleeMethod);
      V.Edges.push_back({Edge.From, Edge.To, Callee});
      if (Callee >= 0)
        buildCallTable(static_cast<int>(P), static_cast<int>(E), Edge.Act,
                       Callee);
    }
  }
}

bool InterprocProblem::mapTuple(const MethodInfo &Caller,
                                const MethodInfo &Callee,
                                const cj::Action &Call,
                                const std::vector<std::string> &Args,
                                TupleMap &Out) const {
  std::map<std::string, unsigned> GhostsUsed;
  std::map<std::string, std::string> Assigned;
  for (const std::string &A : Args) {
    auto It = Assigned.find(A);
    if (It != Assigned.end()) {
      Out.CalleeArgs.push_back(It->second);
      continue;
    }
    std::string Mapped;
    if (!Call.Lhs.empty() && A == Call.Lhs) {
      Mapped = "$ret";
    } else {
      for (size_t I = 0;
           I != Call.Args.size() && I != Call.CalleeMethod->Params.size();
           ++I)
        if (Call.Args[I] == A && !Call.Args[I].empty()) {
          Mapped = Call.CalleeMethod->Params[I].Name;
          break;
        }
    }
    if (Mapped.empty()) {
      std::string T = typeOfVarIn(Caller, A);
      auto GIt = Callee.Ghosts.find(T);
      if (GIt == Callee.Ghosts.end())
        return false;
      unsigned &Used = GhostsUsed[T];
      if (Used >= 2)
        return false;
      Mapped = GIt->second[Used++];
      Out.GhostToCaller[Mapped] = A;
    }
    Assigned.emplace(A, Mapped);
    Out.CalleeArgs.push_back(Mapped);
  }
  return true;
}

int InterprocProblem::instantiateIn(const MethodInfo &Info, int Family,
                                    const std::vector<std::string> &Args,
                                    int &VarOut) const {
  const PredicateFamily &Fam = Abs.Families[Family];
  Conjunction Body;
  switch (instantiateFamily(Fam, Args, Fam.VarTypes, Body)) {
  case InstResult::False:
    return 0;
  case InstResult::True:
    return 1;
  case InstResult::Conj:
    break;
  }
  auto It = Info.VarIdx.find(conjunctionStr(Body));
  if (It == Info.VarIdx.end())
    return 1; // Unknown instance: conservative.
  VarOut = It->second;
  return 2;
}

std::vector<int> InterprocProblem::factFeeders(const MethodInfo &Caller,
                                               const MethodInfo &Callee,
                                               const cj::Action &Call,
                                               int CalleeFact) const {
  const BoolVar &BV = Callee.BP.Vars[CalleeFact];
  std::vector<std::vector<std::string>> Cands(BV.Args.size());
  for (size_t I = 0; I != BV.Args.size(); ++I) {
    const std::string &V = BV.Args[I];
    if (isGhost(V)) {
      // An arbitrary caller object of the slot's type.
      const PredicateFamily &Fam = Abs.Families[BV.Family];
      for (const auto &[Name, T] : Caller.Ext.CompVars)
        if (T == Fam.VarTypes[I])
          Cands[I].push_back(Name);
      if (Cands[I].empty())
        return {};
      continue;
    }
    bool IsFormal = false;
    for (size_t P = 0;
         P != Call.CalleeMethod->Params.size() && P != Call.Args.size(); ++P)
      if (Call.CalleeMethod->Params[P].Name == V) {
        if (Call.Args[P].empty())
          return {ifds::LambdaFact}; // Unknown actual: conservative.
        Cands[I] = {Call.Args[P]};
        IsFormal = true;
        break;
      }
    if (!IsFormal)
      return {ifds::LambdaFact}; // Callee local / $ret: uninitialized.
  }
  // Enumerate candidate tuples (arity <= 2 keeps this tiny).
  std::set<int> Feeders;
  std::vector<size_t> Idx(BV.Args.size(), 0);
  while (true) {
    std::vector<std::string> Tuple(BV.Args.size());
    for (size_t I = 0; I != Idx.size(); ++I)
      Tuple[I] = Cands[I][Idx[I]];
    int CallerVar = -1;
    switch (instantiateIn(Caller, BV.Family, Tuple, CallerVar)) {
    case 1:
      Feeders.insert(ifds::LambdaFact);
      break;
    case 2:
      Feeders.insert(1 + CallerVar);
      break;
    default:
      break;
    }
    size_t I = 0;
    for (; I != Idx.size(); ++I) {
      if (++Idx[I] < Cands[I].size())
        break;
      Idx[I] = 0;
    }
    if (I == Idx.size())
      break;
  }
  return {Feeders.begin(), Feeders.end()};
}

void InterprocProblem::buildCallTable(int CallerIdx, int EdgeIdx,
                                      const cj::Action &Call,
                                      int CalleeIdx) {
  const MethodInfo &Caller = Infos[CallerIdx];
  const MethodInfo &Callee = Infos[CalleeIdx];
  CallTable CT;
  CT.Callee = CalleeIdx;
  CT.Call = &Call;

  for (size_t B = 0; B != Caller.BP.Vars.size(); ++B) {
    const BoolVar &BV = Caller.BP.Vars[B];
    TupleMap TM;
    if (!mapTuple(Caller, Callee, Call, BV.Args, TM)) {
      CT.Bypass.push_back(static_cast<int>(B));
      continue;
    }
    int CalleeVar = -1;
    if (instantiateIn(Callee, BV.Family, TM.CalleeArgs, CalleeVar) != 2) {
      // Injective renaming preserves constant-ness; if we land on a
      // constant or unknown instance, stay conservative.
      CT.Bypass.push_back(static_cast<int>(B));
      continue;
    }
    CT.SummaryTargets[CalleeVar].push_back(static_cast<int>(B));
    CT.TMs.emplace(static_cast<int>(B), std::move(TM));
  }

  CT.FeedOut.resize(1 + Caller.BP.Vars.size());
  CT.FeedOut[ifds::LambdaFact].push_back(ifds::LambdaFact);
  for (size_t E = 0; E != Callee.BP.Vars.size(); ++E)
    for (int F : factFeeders(Caller, Callee, Call, static_cast<int>(E)))
      CT.FeedOut[F].push_back(1 + static_cast<int>(E));

  Tables[CallerIdx].emplace(EdgeIdx, std::move(CT));
}

const std::vector<int> &InterprocProblem::feedersOf(int CallerIdx,
                                                    const CallTable &CT,
                                                    int B,
                                                    int CalleeEntryVar) const {
  auto Key = std::make_pair(B, CalleeEntryVar);
  auto It = CT.Feeders.find(Key);
  if (It != CT.Feeders.end())
    return It->second;

  const MethodInfo &Caller = Infos[CallerIdx];
  const MethodInfo &Callee = Infos[CT.Callee];
  const cj::Action &Call = *CT.Call;
  const TupleMap &TM = CT.TMs.at(B);
  const BoolVar &BV = Callee.BP.Vars[CalleeEntryVar];

  std::vector<int> Result;
  std::vector<std::string> CallerArgs(BV.Args.size());
  bool Unmapped = false;
  for (size_t I = 0; I != BV.Args.size() && !Unmapped; ++I) {
    const std::string &V = BV.Args[I];
    auto GIt = TM.GhostToCaller.find(V);
    if (GIt != TM.GhostToCaller.end()) {
      CallerArgs[I] = GIt->second;
      continue;
    }
    bool Found = false;
    for (size_t P = 0;
         P != Call.CalleeMethod->Params.size() && P != Call.Args.size(); ++P)
      if (Call.CalleeMethod->Params[P].Name == V && !Call.Args[P].empty()) {
        CallerArgs[I] = Call.Args[P];
        Found = true;
        break;
      }
    // A callee local, $ret, an unbound formal, or a callee ghost not in
    // this tuple's assignment: uninitialized/arbitrary at callee entry,
    // hence unconditionally may-be-1.
    Unmapped = !Found;
  }
  if (Unmapped) {
    Result.push_back(ifds::LambdaFact);
  } else {
    int CallerVar = -1;
    switch (instantiateIn(Caller, BV.Family, CallerArgs, CallerVar)) {
    case 0:
      break; // Constant-false at entry: contributes nothing.
    case 1:
      Result.push_back(ifds::LambdaFact);
      break;
    default:
      Result.push_back(1 + CallerVar);
      break;
    }
  }
  return CT.Feeders.emplace(Key, std::move(Result)).first->second;
}

} // namespace detail
} // namespace bp
} // namespace canvas

using canvas::bp::detail::InterprocProblem;
using canvas::bp::detail::MethodInfo;

struct InterprocModel::Impl {
  InterprocProblem Prob;
  std::vector<InterprocModel::Anchor> Anchors;

  Impl(const DerivedAbstraction &Abs, const cj::ClientCFG &CFG,
       const cj::CFGMethod &Entry, DiagnosticEngine &Diags)
      : Prob(Abs, CFG, Entry, Diags) {
    const std::vector<MethodInfo> &Infos = Prob.infos();
    for (size_t P = 0; P != Infos.size(); ++P) {
      for (const Check &C : Infos[P].BP.Checks) {
        InterprocModel::Anchor A;
        A.Method = Infos[P].Orig->name();
        A.Loc = C.Loc;
        A.ReqLoc = C.ReqLoc;
        A.What = C.What;
        A.Proc = static_cast<int>(P);
        A.Node = Infos[P].Ext.Edges[C.Edge].From;
        A.Var = C.Var;
        A.ConstantViolated = C.ConstantViolated;
        Anchors.push_back(std::move(A));
      }
    }
  }
};

InterprocModel::InterprocModel(const DerivedAbstraction &Abs,
                               const cj::ClientCFG &CFG,
                               const cj::CFGMethod &Entry,
                               DiagnosticEngine &Diags)
    : I(std::make_unique<Impl>(Abs, CFG, Entry, Diags)) {}
InterprocModel::~InterprocModel() = default;
InterprocModel::InterprocModel(InterprocModel &&) noexcept = default;
InterprocModel &
InterprocModel::operator=(InterprocModel &&) noexcept = default;

const ifds::Problem &InterprocModel::problem() const { return I->Prob; }
const std::vector<InterprocModel::Anchor> &InterprocModel::anchors() const {
  return I->Anchors;
}

InterResult bp::analyzeInterproc(const DerivedAbstraction &Abs,
                                 const cj::ClientCFG &CFG,
                                 const cj::CFGMethod &Entry,
                                 DiagnosticEngine &Diags,
                                 support::CancelToken *Cancel) {
  InterprocModel Model(Abs, CFG, Entry, Diags);
  return analyzeInterproc(Model, Cancel, nullptr);
}

InterResult bp::analyzeInterproc(const InterprocModel &Model,
                                 support::CancelToken *Cancel,
                                 IfdsTabulation *TabOut) {
  support::faultProbe("boolprog.interproc");
  const InterprocProblem &Prob = Model.I->Prob;
  ifds::Solver Solver(Prob);
  Solver.solve(Cancel);

  InterResult R;
  R.SummaryIterations = Solver.stats().Visits;
  R.ExplodedNodes = Solver.stats().ExplodedNodes;
  R.PathEdges = Solver.stats().PathEdges;
  R.Summaries = Solver.stats().Summaries;

  const std::vector<MethodInfo> &Infos = Prob.infos();
  std::vector<TraceRenderProc> Render;
  for (const MethodInfo &Info : Infos)
    Render.push_back({&Info.Ext, &Info.BP});

  std::unique_ptr<ifds::WitnessBuilder> WB;
  for (size_t P = 0; P != Infos.size(); ++P) {
    const MethodInfo &Info = Infos[P];
    int PI = static_cast<int>(P);
    if (!Solver.reached(PI, Info.Ext.Entry, ifds::LambdaFact))
      continue; // Not callable from the entry method.
    for (const Check &C : Info.BP.Checks) {
      core::CheckRecord Rec;
      Rec.Method = Info.Orig->name();
      Rec.Loc = C.Loc;
      Rec.What = C.What;
      Rec.ReqLoc = C.ReqLoc;
      int From = Info.Ext.Edges[C.Edge].From;
      int Fact = C.Var >= 0 ? 1 + C.Var : ifds::LambdaFact;
      if (!Solver.reached(PI, From, ifds::LambdaFact)) {
        Rec.Outcome = CheckOutcome::Unreachable;
      } else if (C.Var < 0) {
        Rec.Outcome = C.ConstantViolated ? CheckOutcome::Potential
                                         : CheckOutcome::Safe;
      } else {
        Rec.Outcome = Solver.reached(PI, From, Fact)
                          ? CheckOutcome::Potential
                          : CheckOutcome::Safe;
      }
      if (Rec.Outcome == CheckOutcome::Potential) {
        auto T0 = std::chrono::steady_clock::now();
        if (!WB)
          WB = std::make_unique<ifds::WitnessBuilder>(Solver);
        std::vector<ifds::TraceStep> Steps;
        int Seed = ifds::LambdaFact;
        if (WB->reconstruct(PI, From, Fact, Steps, Seed)) {
          Rec.Witness = renderTrace(Steps, Render, Prob.entryProc(), Seed);
          Rec.Witness.Steps.push_back(
              renderCheckStep(Info.Ext, Info.BP, C));
        }
        auto T1 = std::chrono::steady_clock::now();
        R.WitnessMicros +=
            std::chrono::duration<double, std::micro>(T1 - T0).count();
      }
      R.Checks.push_back(std::move(Rec));
    }
  }

  if (TabOut) {
    TabOut->PathEdges.reserve(Solver.pathEdges().size());
    for (const ifds::Solver::PathEdge &E : Solver.pathEdges())
      TabOut->PathEdges.push_back({E.Proc, E.EntryFact, E.Node, E.Fact});
    for (int P = 0; P != Prob.numProcs(); ++P)
      for (int F = 0; F != Prob.numFacts(P); ++F)
        if (Solver.genuineEntry(P, F))
          TabOut->Genuine.emplace_back(P, F);
  }
  return R;
}
