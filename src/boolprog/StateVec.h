//===----------------------------------------------------------------------===//
///
/// \file
/// The possible-value domain of the boolean-program engines: a
/// variable's value set is a subset of {0,1} (2 bits), and a program
/// point's abstract state is one value set per variable.
///
/// StateVec packs a whole state into 2-bit lanes of 64-bit words
/// (32 variables per word) so the O(E * B^2) fixpoints join and
/// compare states word-parallel instead of per-variable, and states of
/// up to 64 variables — almost every slice — need no heap allocation
/// at all (see DESIGN.md "Arena / flat-structure memory architecture").
/// The lane encoding is the ValueSet bit pattern itself (bit 0 = "may
/// be 0", bit 1 = "may be 1"), so the lattice join is bitwise OR.
/// Lanes past the last variable are kept zero, which makes whole-word
/// equality exact.
///
/// A default-constructed (or zero-variable) StateVec is *disengaged*
/// and marks an unreachable program point — the packed equivalent of
/// the empty per-node vector the engines used before.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BOOLPROG_STATEVEC_H
#define CANVAS_BOOLPROG_STATEVEC_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace canvas {
namespace bp {

/// A subset of {0,1}: bit 0 = "may be 0", bit 1 = "may be 1".
enum class ValueSet : uint8_t { Bottom = 0, Zero = 1, One = 2, Both = 3 };

inline ValueSet vsJoin(ValueSet A, ValueSet B) {
  return static_cast<ValueSet>(static_cast<uint8_t>(A) |
                               static_cast<uint8_t>(B));
}
inline bool canBeOne(ValueSet V) {
  return static_cast<uint8_t>(V) & static_cast<uint8_t>(ValueSet::One);
}
inline bool canBeZero(ValueSet V) {
  return static_cast<uint8_t>(V) & static_cast<uint8_t>(ValueSet::Zero);
}
inline const char *vsStr(ValueSet V) {
  switch (V) {
  case ValueSet::Bottom:
    return "{}";
  case ValueSet::Zero:
    return "{0}";
  case ValueSet::One:
    return "{1}";
  case ValueSet::Both:
    return "{0,1}";
  }
  return "?";
}

/// One abstract state: a ValueSet per boolean variable, packed 32
/// variables per 64-bit word. See the file comment for the engaged /
/// disengaged convention and the tail-lane invariant.
class StateVec {
public:
  StateVec() = default;
  StateVec(unsigned NumVars, ValueSet Fill) : NV(NumVars) {
    const unsigned W = numWords();
    uint64_t *P = ensure(W);
    const uint64_t Pat = 0x5555555555555555ull * static_cast<uint8_t>(Fill);
    for (unsigned I = 0; I != W; ++I)
      P[I] = Pat;
    maskTail();
  }

  StateVec(const StateVec &O) : NV(O.NV) {
    const unsigned W = numWords();
    std::memcpy(ensure(W), O.wordsPtr(), W * sizeof(uint64_t));
  }
  StateVec(StateVec &&O) noexcept : NV(O.NV), Heap(std::move(O.Heap)) {
    Buf[0] = O.Buf[0];
    Buf[1] = O.Buf[1];
    O.NV = 0;
  }
  StateVec &operator=(const StateVec &O) {
    if (this == &O)
      return *this;
    NV = O.NV;
    const unsigned W = numWords();
    std::memcpy(ensure(W), O.wordsPtr(), W * sizeof(uint64_t));
    return *this;
  }
  StateVec &operator=(StateVec &&O) noexcept {
    NV = O.NV;
    Heap = std::move(O.Heap);
    Buf[0] = O.Buf[0];
    Buf[1] = O.Buf[1];
    O.NV = 0;
    return *this;
  }

  /// False marks an unreachable program point (no state at all).
  bool engaged() const { return NV != 0; }
  unsigned size() const { return NV; }

  ValueSet get(unsigned V) const {
    assert(V < NV);
    return static_cast<ValueSet>(
        (wordsPtr()[V >> 5] >> ((V & 31) * 2)) & 3u);
  }
  void set(unsigned V, ValueSet Val) {
    assert(V < NV);
    uint64_t &W = wordsPtr()[V >> 5];
    const unsigned Shift = (V & 31) * 2;
    W = (W & ~(3ull << Shift)) |
        (static_cast<uint64_t>(static_cast<uint8_t>(Val)) << Shift);
  }

  /// Word-parallel lattice join (lane-wise OR). Returns true when
  /// *this changed. Both sides must be engaged over the same variables.
  bool joinWith(const StateVec &O) {
    assert(NV == O.NV);
    uint64_t *P = wordsPtr();
    const uint64_t *Q = O.wordsPtr();
    uint64_t Diff = 0;
    for (unsigned I = 0, W = numWords(); I != W; ++I) {
      const uint64_t J = P[I] | Q[I];
      Diff |= J ^ P[I];
      P[I] = J;
    }
    return Diff != 0;
  }

  bool operator==(const StateVec &O) const {
    if (NV != O.NV)
      return false;
    return std::memcmp(wordsPtr(), O.wordsPtr(),
                       numWords() * sizeof(uint64_t)) == 0;
  }
  bool operator!=(const StateVec &O) const { return !(*this == O); }

  /// Boundary conversions for the unpacked std::vector<ValueSet> API.
  static StateVec pack(const std::vector<ValueSet> &V) {
    StateVec S(static_cast<unsigned>(V.size()), ValueSet::Bottom);
    for (unsigned I = 0; I != V.size(); ++I)
      S.set(I, V[I]);
    return S;
  }
  std::vector<ValueSet> unpack() const {
    std::vector<ValueSet> V(NV);
    for (unsigned I = 0; I != NV; ++I)
      V[I] = get(I);
    return V;
  }

private:
  static constexpr unsigned kInlineWords = 2; ///< 64 variables inline.

  unsigned numWords() const { return (NV + 31) / 32; }
  const uint64_t *wordsPtr() const { return Heap ? Heap.get() : Buf; }
  uint64_t *wordsPtr() { return Heap ? Heap.get() : Buf; }

  /// Points the state at a buffer of \p W words (heap only past the
  /// inline capacity); contents unspecified.
  uint64_t *ensure(unsigned W) {
    if (W <= kInlineWords) {
      Heap.reset();
      return Buf;
    }
    Heap = std::make_unique<uint64_t[]>(W);
    return Heap.get();
  }
  /// Zeroes the lanes past the last variable (the equality invariant).
  void maskTail() {
    if (NV & 31)
      wordsPtr()[numWords() - 1] &= (1ull << ((NV & 31) * 2)) - 1;
  }

  unsigned NV = 0;
  uint64_t Buf[kInlineWords] = {0, 0};
  std::unique_ptr<uint64_t[]> Heap; ///< Engaged when numWords() > 2.
};

} // namespace bp
} // namespace canvas

#endif // CANVAS_BOOLPROG_STATEVEC_H
