//===----------------------------------------------------------------------===//
///
/// \file
/// The intraprocedural possible-value analysis of Section 4.3: each
/// boolean variable's set of possible values (a subset of {0,1}) is
/// computed at every program point by a distributive fixpoint (an FDS
/// analysis in the paper's terminology), in O(E * B^2) time.
///
/// Precision: membership of 1 in a value set is exact with respect to
/// the meet-over-all-paths solution, because every assignment has the
/// form p0 := p1 || ... || pk (positive and monotone) — see DESIGN.md
/// decision 2; membership of 0 may be over-approximated across joins,
/// which can never induce a false alarm since requires checks only
/// consult 1-membership.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BOOLPROG_ANALYSIS_H
#define CANVAS_BOOLPROG_ANALYSIS_H

#include "boolprog/BooleanProgram.h"
#include "boolprog/StateVec.h"
#include "core/Verdict.h"
#include "support/Budget.h"

#include <cstdint>
#include <string>
#include <vector>

namespace canvas {
namespace bp {

/// Verdict for one requires check — the shared vocabulary of
/// core/Verdict.h (every engine reports through core::CheckRecord).
using CheckOutcome = core::CheckOutcome;

struct IntraResult {
  /// In[n] = possible values of every variable on entry to node n,
  /// packed (see StateVec.h). A disengaged entry marks an unreachable
  /// node — except in a zero-variable program, where every state is
  /// zero-width and therefore disengaged by convention; Reached is the
  /// authoritative record there.
  std::vector<StateVec> In;
  /// Reached[n] != 0 iff the fixpoint ever propagated a state into
  /// node n. Engagement cannot encode this for zero-variable programs
  /// (see StateVec.h), and treating "disengaged" as "not yet seen"
  /// made the worklist requeue every node of a zero-variable loop
  /// forever.
  std::vector<uint8_t> Reached;
  std::vector<CheckOutcome> CheckResults; ///< Indexed like Checks.
  unsigned Iterations = 0;

  bool reachable(int Node) const {
    return Reached.empty() ? In[Node].engaged() : Reached[Node] != 0;
  }
  unsigned numFlagged() const;
  /// Renders the abstract state at \p Node (the Fig. 8 analogue),
  /// listing each boolean variable with its value set.
  std::string stateStr(const BooleanProgram &BP, int Node) const;
  /// One line per check: location, text, and verdict.
  std::string reportStr(const BooleanProgram &BP) const;
};

/// The one-edge transfer function of the possible-value analysis,
/// shared by the fixpoint driver and the proof-carrying-certificate
/// checker (cert::Checker): assume-refinement of the edge's checked
/// variables, then the parallel assignment, with every RHS evaluated
/// over the refined pre-state. The checker re-applies edges against a
/// claimed fixpoint annotation without running any worklist, so the
/// evaluator must be the single shared definition of edge semantics.
class EdgeTransfer {
public:
  explicit EdgeTransfer(const BooleanProgram &BP, bool AssumeChecksPass = true);

  /// Evaluates one parallel-assignment RHS over pre-state \p In.
  static ValueSet evalRhs(const BoolRhs &R, const StateVec &In);
  static ValueSet evalRhs(const BoolRhs &R, const std::vector<ValueSet> &In);

  /// Applies CFG edge \p EIdx to \p In. Returns false when no execution
  /// continues past the edge (a checked variable cannot be 0, so every
  /// path throws); \p Out is unspecified then.
  bool apply(int EIdx, const StateVec &In, StateVec &Out) const;
  bool apply(int EIdx, const std::vector<ValueSet> &In,
             std::vector<ValueSet> &Out) const;

  const BooleanProgram &program() const { return BP; }

private:
  const BooleanProgram &BP;
  /// Checked variables per edge (empty when !AssumeChecksPass).
  std::vector<std::vector<int>> AssumedZero;
};

/// Runs the worklist fixpoint on \p BP. On entry every variable may hold
/// either value (component variables are unconstrained/uninitialized at
/// method entry); pass \p EntryState to override (used by the
/// interprocedural analysis and by tests).
///
/// \p AssumeChecksPass models the exception semantics of the dynamic
/// check: a failed requires clause throws, so executions continuing past
/// a call satisfied it — the checked variable is refined to 0 on the
/// outgoing edge. Without it the analysis computes the exact
/// possible-value MOP of the (non-aborting) transformed program of
/// Section 4.3.
/// \p Cancel, when given, is ticked once per worklist pop (cooperative
/// budget enforcement; see support/Budget.h).
IntraResult analyzeIntraproc(const BooleanProgram &BP,
                             support::CancelToken *Cancel = nullptr);
IntraResult analyzeIntraproc(const BooleanProgram &BP,
                             const std::vector<ValueSet> &EntryState,
                             bool AssumeChecksPass = true,
                             support::CancelToken *Cancel = nullptr);

/// One merged requires verdict from a sliced run; Items are ordered by
/// edge index, matching the check order of the unsliced program. Rec
/// carries the shared verdict record (Method is left for the caller to
/// fill); Potential verdicts carry a witness trace whose step/edge
/// indices refer to the analyzed (possibly pre-analysis-transformed)
/// CFG — remap through the MethodPlan before reporting.
struct SlicedCheckItem {
  int Edge = -1;
  core::CheckRecord Rec;
};

struct SlicedIntraResult {
  std::vector<SlicedCheckItem> Items;
  /// Boolean programs built and analyzed (slices, plus the fallback run
  /// when one was needed).
  unsigned SliceRuns = 0;
  /// True when a Definite verdict forced an unsliced rerun: definite
  /// violations truncate paths under AssumeChecksPass, which per-slice
  /// runs cannot see across slices.
  bool FellBack = false;
  size_t BoolVars = 0;         ///< Sum of B over all runs.
  size_t MaxSliceBoolVars = 0; ///< Largest single-run B.
};

/// Certifies \p M per slice: builds and analyzes one restricted boolean
/// program per entry of \p Slices (a partition of the relevant
/// component variables, from dataflow::computeSlices) and merges the
/// verdicts. Each slice costs O(E * B_slice^2), so a method whose
/// variables split into k independent slices avoids the quadratic
/// blowup of the combined B. Verdict-equivalent to the unsliced run —
/// see DESIGN.md "Stage 0 pre-analysis" for the argument and the
/// Definite fallback.
SlicedIntraResult
analyzeIntraprocSliced(const wp::DerivedAbstraction &Abs,
                       const cj::CFGMethod &M,
                       const std::vector<std::vector<std::string>> &Slices,
                       DiagnosticEngine &Diags,
                       support::CancelToken *Cancel = nullptr);

} // namespace bp
} // namespace canvas

#endif // CANVAS_BOOLPROG_ANALYSIS_H
