#include "boolprog/Analysis.h"

#include "boolprog/Witness.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>

using namespace canvas;
using namespace canvas::bp;

unsigned IntraResult::numFlagged() const {
  unsigned N = 0;
  for (CheckOutcome O : CheckResults)
    N += O == CheckOutcome::Potential || O == CheckOutcome::Definite;
  return N;
}

std::string IntraResult::stateStr(const BooleanProgram &BP, int Node) const {
  if (!reachable(Node))
    return "<unreachable>\n";
  std::string Out;
  for (size_t V = 0; V != BP.Vars.size(); ++V)
    Out += "[" + BP.Vars[V].Name + "] = " +
           vsStr(In[Node].get(static_cast<unsigned>(V))) + "\n";
  return Out;
}

std::string IntraResult::reportStr(const BooleanProgram &BP) const {
  std::string Out;
  for (size_t I = 0; I != BP.Checks.size(); ++I) {
    const Check &C = BP.Checks[I];
    Out += C.Loc.str() + ": " + C.What + ": " +
           core::outcomeStr(CheckResults[I]) + "\n";
  }
  return Out;
}

namespace {

/// Shared RHS evaluation over any state with a per-variable accessor;
/// instantiated for the packed StateVec and the unpacked vector API.
template <typename GetVS>
ValueSet evalRhsImpl(const BoolRhs &R, GetVS At) {
  switch (R.K) {
  case BoolRhs::Kind::Const:
    return R.PlusOne ? ValueSet::One : ValueSet::Zero;
  case BoolRhs::Kind::Unknown:
    return ValueSet::Both;
  case BoolRhs::Kind::Or: {
    bool P1 = R.PlusOne;
    bool P0 = !R.PlusOne;
    bool Dead = false;
    for (int S : R.Sources) {
      ValueSet V = At(S);
      if (V == ValueSet::Bottom)
        Dead = true;
      P1 = P1 || canBeOne(V);
      P0 = P0 && canBeZero(V);
    }
    if (Dead)
      return ValueSet::Bottom;
    uint8_t Bits = (P0 ? 1 : 0) | (P1 ? 2 : 0);
    return static_cast<ValueSet>(Bits);
  }
  }
  return ValueSet::Both;
}

} // namespace

ValueSet EdgeTransfer::evalRhs(const BoolRhs &R, const StateVec &In) {
  return evalRhsImpl(R, [&](int S) { return In.get(S); });
}

ValueSet EdgeTransfer::evalRhs(const BoolRhs &R,
                               const std::vector<ValueSet> &In) {
  return evalRhsImpl(R, [&](int S) { return In[S]; });
}

EdgeTransfer::EdgeTransfer(const BooleanProgram &BP, bool AssumeChecksPass)
    : BP(BP), AssumedZero(BP.CFG->Edges.size()) {
  // Checked variables per edge: a failed requires throws, so executions
  // that continue past the call had value 0 (assume-refinement matching
  // the exception semantics of the dynamic check).
  if (AssumeChecksPass)
    for (const Check &C : BP.Checks)
      if (C.Var >= 0)
        AssumedZero[C.Edge].push_back(C.Var);
}

bool EdgeTransfer::apply(int EIdx, const StateVec &In,
                         StateVec &Out) const {
  Out = In;
  for (int V : AssumedZero[EIdx]) {
    if (!canBeZero(Out.get(V))) {
      // Every execution reaching this call violates the requires clause
      // and throws: nothing continues along this edge.
      return false;
    }
    Out.set(V, ValueSet::Zero);
  }
  // The parallel assignment reads the refined pre-state; the copy is a
  // couple of words for states of <= 64 variables.
  const StateVec Refined = Out;
  for (const auto &[Tgt, Rhs] : BP.EdgeAssignments[EIdx])
    Out.set(Tgt, evalRhs(Rhs, Refined));
  return true;
}

bool EdgeTransfer::apply(int EIdx, const std::vector<ValueSet> &In,
                         std::vector<ValueSet> &Out) const {
  StateVec PackedOut;
  if (!apply(EIdx, StateVec::pack(In), PackedOut))
    return false;
  Out = PackedOut.unpack();
  return true;
}

IntraResult bp::analyzeIntraproc(const BooleanProgram &BP,
                                 support::CancelToken *Cancel) {
  return analyzeIntraproc(BP,
                          std::vector<ValueSet>(BP.Vars.size(),
                                                ValueSet::Both),
                          true, Cancel);
}

IntraResult bp::analyzeIntraproc(const BooleanProgram &BP,
                                 const std::vector<ValueSet> &EntryState,
                                 bool AssumeChecksPass,
                                 support::CancelToken *Cancel) {
  const cj::CFGMethod &CFG = *BP.CFG;
  assert(EntryState.size() == BP.Vars.size() && "entry state size mismatch");

  IntraResult R;
  R.In.assign(CFG.NumNodes, StateVec());
  R.In[CFG.Entry] = StateVec::pack(EntryState);

  // Outgoing-edge adjacency.
  std::vector<std::vector<int>> OutEdges(CFG.NumNodes);
  for (size_t E = 0; E != CFG.Edges.size(); ++E)
    OutEdges[CFG.Edges[E].From].push_back(static_cast<int>(E));

  const EdgeTransfer Transfer(BP, AssumeChecksPass);

  std::deque<int> Worklist{CFG.Entry};
  std::vector<bool> Queued(CFG.NumNodes, false);
  Queued[CFG.Entry] = true;
  // First-visit bookkeeping must not lean on Dst.engaged(): the states
  // of a zero-variable program (a slice whose set has no iterators, or
  // a client with none at all) are zero-width and permanently
  // disengaged, so "not engaged ⇒ first visit ⇒ changed" would requeue
  // every node of a loop forever.
  R.Reached.assign(CFG.NumNodes, 0);
  R.Reached[CFG.Entry] = 1;

  while (!Worklist.empty()) {
    support::faultProbe("boolprog.intra");
    if (Cancel)
      Cancel->tick();
    int N = Worklist.front();
    Worklist.pop_front();
    Queued[N] = false;
    ++R.Iterations;
    const StateVec &InState = R.In[N];

    for (int EIdx : OutEdges[N]) {
      const cj::CFGEdge &E = CFG.Edges[EIdx];
      StateVec OutState;
      if (!Transfer.apply(EIdx, InState, OutState))
        continue; // Dead edge: every continuing execution throws.

      StateVec &Dst = R.In[E.To];
      bool Changed = false;
      if (!R.Reached[E.To]) {
        R.Reached[E.To] = 1;
        Dst = std::move(OutState);
        Changed = true;
      } else {
        Changed = Dst.joinWith(OutState);
      }
      if (Changed && !Queued[E.To]) {
        Queued[E.To] = true;
        Worklist.push_back(E.To);
      }
    }
  }

  // Evaluate checks against the state before their edge.
  R.CheckResults.reserve(BP.Checks.size());
  for (const Check &C : BP.Checks) {
    int From = CFG.Edges[C.Edge].From;
    if (!R.reachable(From)) {
      R.CheckResults.push_back(CheckOutcome::Unreachable);
      continue;
    }
    if (C.Var < 0) {
      R.CheckResults.push_back(C.ConstantViolated ? CheckOutcome::Definite
                                                  : CheckOutcome::Safe);
      continue;
    }
    ValueSet V = R.In[From].get(C.Var);
    if (!canBeOne(V))
      R.CheckResults.push_back(CheckOutcome::Safe);
    else if (!canBeZero(V))
      R.CheckResults.push_back(CheckOutcome::Definite);
    else
      R.CheckResults.push_back(CheckOutcome::Potential);
  }
  return R;
}

SlicedIntraResult bp::analyzeIntraprocSliced(
    const wp::DerivedAbstraction &Abs, const cj::CFGMethod &M,
    const std::vector<std::vector<std::string>> &Slices,
    DiagnosticEngine &Diags, support::CancelToken *Cancel) {
  SlicedIntraResult R;

  auto RunOne = [&](const BuildRestriction &Restrict) {
    BooleanProgram BP = buildBooleanProgram(Abs, M, Diags, Restrict);
    IntraResult IR = analyzeIntraproc(BP, Cancel);
    ++R.SliceRuns;
    R.BoolVars += BP.Vars.size();
    R.MaxSliceBoolVars = std::max(R.MaxSliceBoolVars, BP.Vars.size());
    // The witness engine tabulates the slice's exploded supergraph once,
    // and only when some check in this slice is actually flagged.
    std::unique_ptr<IntraWitnessEngine> WE;
    for (size_t I = 0; I != BP.Checks.size(); ++I) {
      SlicedCheckItem Item;
      Item.Edge = BP.Checks[I].Edge;
      Item.Rec.Loc = BP.Checks[I].Loc;
      Item.Rec.What = BP.Checks[I].What;
      Item.Rec.ReqLoc = BP.Checks[I].ReqLoc;
      Item.Rec.Outcome = IR.CheckResults[I];
      if (Item.Rec.Outcome == CheckOutcome::Potential ||
          Item.Rec.Outcome == CheckOutcome::Definite) {
        if (!WE)
          WE = std::make_unique<IntraWitnessEngine>(BP);
        Item.Rec.Witness = WE->witnessFor(I);
      }
      R.Items.push_back(std::move(Item));
    }
  };

  if (Slices.empty()) {
    // No relevant component variables: an empty restriction still
    // reports the (check-free) program's trivial result.
    RunOne(BuildRestriction{});
  } else {
    for (const std::vector<std::string> &S : Slices) {
      BuildRestriction BR;
      BR.Vars = S;
      RunOne(BR);
    }
  }

  if (Slices.size() > 1) {
    bool AnyDefinite = false;
    for (const SlicedCheckItem &I : R.Items)
      AnyDefinite |= I.Rec.Outcome == CheckOutcome::Definite;
    if (AnyDefinite) {
      // A definite violation kills the continuing edge (the call
      // throws), truncating paths for every slice — rerun over the
      // union so downstream reachability is shared.
      R.Items.clear();
      R.FellBack = true;
      BuildRestriction Union;
      for (const std::vector<std::string> &S : Slices)
        Union.Vars.insert(Union.Vars.end(), S.begin(), S.end());
      RunOne(Union);
    }
  }

  // Each edge's checks come from exactly one run (its receiver's
  // slice), in requires-clause order; interleave runs back into the
  // unsliced program's edge order.
  std::stable_sort(
      R.Items.begin(), R.Items.end(),
      [](const SlicedCheckItem &A, const SlicedCheckItem &B) {
        return A.Edge < B.Edge;
      });
  return R;
}
