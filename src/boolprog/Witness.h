//===----------------------------------------------------------------------===//
///
/// \file
/// Witness support for the boolean-program certifiers: the exploded
/// (per-fact) reading of a boolean program's parallel assignments,
/// rendering of IFDS trace steps into the shared core::WitnessTrace
/// vocabulary, and a per-program witness engine for the
/// intraprocedural engines (a single-procedure IFDS tabulation with
/// predecessor recording, run only to extract evidence paths for
/// checks the precise possible-value analysis already flagged).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BOOLPROG_WITNESS_H
#define CANVAS_BOOLPROG_WITNESS_H

#include "boolprog/BooleanProgram.h"
#include "core/Verdict.h"
#include "ifds/Witness.h"

#include <memory>
#include <vector>

namespace canvas {
namespace bp {

/// The exploded-edge reading of one edge's parallel assignment, over
/// facts 0 = Lambda, 1+v = "boolean variable v may be 1". Shared by
/// the intraprocedural witness engine and the interprocedural IFDS
/// adapter.
struct EdgeFlow {
  /// Targets t whose assignment may produce 1 regardless of the input
  /// state (constant 1, havoc, or a PlusOne disjunction).
  std::vector<int> GenFromLambda;
  /// Assigned[v]: v is a target of the edge's parallel assignment (so
  /// its old value does not survive by identity).
  std::vector<char> Assigned;
  /// VarToTargets[v]: targets whose disjunction mentions v.
  std::vector<std::vector<int>> VarToTargets;
};

std::vector<EdgeFlow> computeEdgeFlows(const BooleanProgram &BP);

/// Applies \p Flow to input fact \p Fact (with Lambda always
/// surviving); \p Kills marks variables refined to 0 across the edge
/// (requires-check kills; null for the interprocedural reading).
void applyEdgeFlow(const EdgeFlow &Flow, int Fact,
                   const std::vector<char> *Kills, std::vector<int> &Out);

/// Rendering context for one IFDS procedure index.
struct TraceRenderProc {
  const cj::CFGMethod *M = nullptr;   ///< Edge actions and locations.
  const BooleanProgram *BP = nullptr; ///< Fact display names.
};

/// Renders solver trace steps into the shared witness vocabulary.
/// \p SeedFact is the entry fact assumed at \p EntryProc's entry.
core::WitnessTrace renderTrace(const std::vector<ifds::TraceStep> &Steps,
                               const std::vector<TraceRenderProc> &Procs,
                               int EntryProc, int SeedFact);

/// The final Kind::Check step of a witness, from the flagged check.
core::WitnessStep renderCheckStep(const cj::CFGMethod &M,
                                  const BooleanProgram &BP, const Check &C);

/// Witness engine for one (possibly slice-restricted) boolean program:
/// solves the single-procedure exploded reachability once, then
/// reconstructs a shortest evidence path per flagged check. The
/// exploded domain over-approximates the possible-value analysis (the
/// definite-violation path cut of AssumeChecksPass is not
/// distributive), so every check the precise engine flags Potential
/// has a witness here.
class IntraWitnessEngine {
public:
  explicit IntraWitnessEngine(const BooleanProgram &BP);
  ~IntraWitnessEngine();

  /// A shortest witness for check \p CheckIdx, ending with a
  /// Kind::Check step; empty when the check's fact is unreached.
  core::WitnessTrace witnessFor(size_t CheckIdx) const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace bp
} // namespace canvas

#endif // CANVAS_BOOLPROG_WITNESS_H
