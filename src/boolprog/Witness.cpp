#include "boolprog/Witness.h"

#include "ifds/Solver.h"

using namespace canvas;
using namespace canvas::bp;

std::vector<EdgeFlow> bp::computeEdgeFlows(const BooleanProgram &BP) {
  size_t NVars = BP.Vars.size();
  std::vector<EdgeFlow> Flows(BP.EdgeAssignments.size());
  for (size_t E = 0; E != BP.EdgeAssignments.size(); ++E) {
    EdgeFlow &F = Flows[E];
    F.Assigned.assign(NVars, 0);
    F.VarToTargets.resize(NVars);
    for (const auto &[Tgt, Rhs] : BP.EdgeAssignments[E]) {
      F.Assigned[Tgt] = 1;
      switch (Rhs.K) {
      case BoolRhs::Kind::Const:
        if (Rhs.PlusOne)
          F.GenFromLambda.push_back(Tgt);
        break;
      case BoolRhs::Kind::Unknown:
        F.GenFromLambda.push_back(Tgt);
        break;
      case BoolRhs::Kind::Or:
        if (Rhs.PlusOne)
          F.GenFromLambda.push_back(Tgt);
        for (int S : Rhs.Sources)
          F.VarToTargets[S].push_back(Tgt);
        break;
      }
    }
  }
  return Flows;
}

void bp::applyEdgeFlow(const EdgeFlow &Flow, int Fact,
                       const std::vector<char> *Kills,
                       std::vector<int> &Out) {
  if (Fact == ifds::LambdaFact) {
    Out.push_back(ifds::LambdaFact);
    for (int T : Flow.GenFromLambda)
      Out.push_back(1 + T);
    return;
  }
  int V = Fact - 1;
  if (Kills && (*Kills)[V])
    return; // Refined to 0: the fact dies, and feeds nothing.
  if (!Flow.Assigned[V])
    Out.push_back(Fact);
  for (int T : Flow.VarToTargets[V])
    Out.push_back(1 + T);
}

core::WitnessTrace
bp::renderTrace(const std::vector<ifds::TraceStep> &Steps,
                const std::vector<TraceRenderProc> &Procs, int EntryProc,
                int SeedFact) {
  core::WitnessTrace T;
  if (SeedFact != ifds::LambdaFact)
    T.SeedFact = Procs[EntryProc].BP->Vars[SeedFact - 1].Name;
  auto FactName = [&](int Proc, int Fact) -> std::string {
    if (Fact == ifds::LambdaFact)
      return "";
    return Procs[Proc].BP->Vars[Fact - 1].Name;
  };
  for (const ifds::TraceStep &S : Steps) {
    const TraceRenderProc &P = Procs[S.Proc];
    const cj::CFGEdge &E = P.M->Edges[S.CFGEdge];
    core::WitnessStep W;
    W.Method = P.M->name();
    W.Edge = S.CFGEdge;
    W.Loc = E.Act.Loc;
    W.ActionText = E.Act.str();
    switch (S.K) {
    case ifds::TraceStep::Kind::Step:
      W.K = core::WitnessStep::Kind::Step;
      W.Fact = FactName(S.Proc, S.Fact);
      break;
    case ifds::TraceStep::Kind::Call:
      W.K = core::WitnessStep::Kind::Call;
      W.Fact = FactName(S.Callee, S.Fact);
      break;
    case ifds::TraceStep::Kind::Return:
      W.K = core::WitnessStep::Kind::Return;
      W.Fact = FactName(S.Proc, S.Fact);
      break;
    }
    T.Steps.push_back(std::move(W));
  }
  return T;
}

core::WitnessStep bp::renderCheckStep(const cj::CFGMethod &M,
                                      const BooleanProgram &BP,
                                      const Check &C) {
  core::WitnessStep W;
  W.K = core::WitnessStep::Kind::Check;
  W.Method = M.name();
  W.Edge = C.Edge;
  W.Loc = C.Loc;
  W.ActionText = C.What;
  if (C.Var >= 0)
    W.Fact = BP.Vars[C.Var].Name;
  return W;
}

//===----------------------------------------------------------------------===//
// IntraWitnessEngine
//===----------------------------------------------------------------------===//

namespace {

/// The single-procedure exploded problem of one boolean program, with
/// requires-check kills (AssumeChecksPass): crossing a checked call
/// refines the checked variable to 0.
class IntraProblem : public ifds::Problem {
public:
  explicit IntraProblem(const BooleanProgram &BP) : BP(BP) {
    const cj::CFGMethod &M = *BP.CFG;
    View.Entry = M.Entry;
    View.Exit = M.Exit;
    View.NumNodes = M.NumNodes;
    for (const cj::CFGEdge &E : M.Edges)
      View.Edges.push_back({E.From, E.To, -1});
    Flows = computeEdgeFlows(BP);
    Kills.assign(M.Edges.size(), {});
    for (const Check &C : BP.Checks)
      if (C.Var >= 0) {
        if (Kills[C.Edge].empty())
          Kills[C.Edge].assign(BP.Vars.size(), 0);
        Kills[C.Edge][C.Var] = 1;
      }
  }

  int numProcs() const override { return 1; }
  const ifds::ProcView &proc(int) const override { return View; }
  int entryProc() const override { return 0; }
  int numFacts(int) const override {
    return 1 + static_cast<int>(BP.Vars.size());
  }

  void initialFacts(std::vector<int> &Out) const override {
    // Component variables are unconstrained at method entry: every
    // fact may be 1.
    for (int F = 0; F != numFacts(0); ++F)
      Out.push_back(F);
  }

  void flowNormal(int, int Edge, int Fact,
                  std::vector<int> &Out) const override {
    applyEdgeFlow(Flows[Edge], Fact,
                  Kills[Edge].empty() ? nullptr : &Kills[Edge], Out);
  }

  // No call edges in a single-procedure view.
  void flowCall(int, int, int, std::vector<int> &) const override {}
  void flowCallToReturn(int, int, int, std::vector<int> &) const override {}
  void flowSummary(int, int, int, int, int,
                   std::vector<int> &) const override {}

private:
  const BooleanProgram &BP;
  ifds::ProcView View;
  std::vector<EdgeFlow> Flows;
  std::vector<std::vector<char>> Kills;
};

} // namespace

struct IntraWitnessEngine::Impl {
  explicit Impl(const BooleanProgram &BP)
      : BP(BP), Prob(BP), Solve(Prob), Build(nullptr) {
    Solve.solve();
    Build = std::make_unique<ifds::WitnessBuilder>(Solve);
  }

  const BooleanProgram &BP;
  IntraProblem Prob;
  ifds::Solver Solve;
  std::unique_ptr<ifds::WitnessBuilder> Build;
};

IntraWitnessEngine::IntraWitnessEngine(const BooleanProgram &BP)
    : I(std::make_unique<Impl>(BP)) {}

IntraWitnessEngine::~IntraWitnessEngine() = default;

core::WitnessTrace IntraWitnessEngine::witnessFor(size_t CheckIdx) const {
  const BooleanProgram &BP = I->BP;
  const Check &C = BP.Checks[CheckIdx];
  int From = BP.CFG->Edges[C.Edge].From;
  int Fact = C.Var >= 0 ? 1 + C.Var : ifds::LambdaFact;
  std::vector<ifds::TraceStep> Steps;
  int Seed = ifds::LambdaFact;
  if (!I->Build->reconstruct(0, From, Fact, Steps, Seed))
    return {};
  std::vector<TraceRenderProc> Procs = {{BP.CFG, &BP}};
  core::WitnessTrace T = renderTrace(Steps, Procs, 0, Seed);
  T.Steps.push_back(renderCheckStep(*BP.CFG, BP, C));
  return T;
}
