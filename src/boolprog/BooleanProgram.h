//===----------------------------------------------------------------------===//
///
/// \file
/// The transformed client program of Section 4.3: component-typed client
/// variables are replaced by boolean variables (the nullary
/// instrumentation-predicate instances of the derived abstraction), and
/// component calls are replaced by the corresponding instantiated method
/// abstractions — parallel assignments of the special form
/// p0 := p1 || ... || pk, p := 0, p := 1.
///
/// Boolean-variable identity is the canonical conjunction over client
/// variables, which uniformly folds the paper's side conditions
/// (same_{x,x} = 1, mutx_{x,x} = 0, mutx symmetry).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_BOOLPROG_BOOLEANPROGRAM_H
#define CANVAS_BOOLPROG_BOOLEANPROGRAM_H

#include "client/CFG.h"
#include "wp/Abstraction.h"

#include <string>
#include <vector>

namespace canvas {
namespace bp {

/// One boolean variable: family instance over a tuple of client
/// variables, identified canonically by its instantiated body.
struct BoolVar {
  int Family = -1;
  std::vector<std::string> Args;
  Conjunction Body;
  /// Canonical identity and display string, e.g.
  /// "i1 != i2 && i1.set == i2.set".
  std::string Name;
};

/// The right-hand side of one parallel assignment slot.
struct BoolRhs {
  enum class Kind {
    Const, ///< PlusOne ? 1 : 0 with no sources.
    Or,    ///< OR of Sources (plus 1 when PlusOne).
    Unknown, ///< Havoc: both values possible.
  };
  Kind K = Kind::Const;
  bool PlusOne = false;
  std::vector<int> Sources; ///< BoolVar indices, evaluated pre-state.
};

/// One "requires !p" obligation attached to a CFG edge; checked against
/// the state before the edge executes.
struct Check {
  int Edge = -1;
  /// BoolVar index; -1 when the obligation folded to a constant.
  int Var = -1;
  /// Valid when Var == -1: true means the requires clause is violated on
  /// every execution reaching it (e.g. i.remove() twice on one iterator
  /// variable folds mutx(i,i) checks away but stale stays; constant
  /// violations arise from degenerate instantiations).
  bool ConstantViolated = false;
  SourceLoc Loc;
  /// Location of the requires clause in the component specification.
  SourceLoc ReqLoc;
  std::string What; ///< "i2.next() requires !stale(i2)" style text.
};

/// The boolean program for one client method.
struct BooleanProgram {
  const cj::CFGMethod *CFG = nullptr;
  const wp::DerivedAbstraction *Abs = nullptr;
  std::vector<BoolVar> Vars;
  /// Parallel assignment per CFG edge (indexed like CFG->Edges):
  /// (target var, rhs) pairs; unlisted vars are unchanged.
  std::vector<std::vector<std::pair<int, BoolRhs>>> EdgeAssignments;
  std::vector<Check> Checks;

  int findVar(const std::string &Name) const;
  std::string str() const;
};

/// Instantiates \p Abs over the component-typed variables of \p M
/// (Section 4.3 "the first step in the certification process").
/// Unsupported constructs are lowered conservatively (havoc/clobber).
BooleanProgram buildBooleanProgram(const wp::DerivedAbstraction &Abs,
                                   const cj::CFGMethod &M,
                                   DiagnosticEngine &Diags);

/// Restricts construction to a subset of the client's component
/// variables — one Stage-0 slice, or the union of the retained
/// variables (see dataflow::preAnalyze and DESIGN.md "Stage 0
/// pre-analysis"). Boolean variables are enumerated over Vars only;
/// predicate applications mentioning an out-of-restriction variable
/// drop to constant false, update rules targeting an out-of-restriction
/// call result are skipped, and requires checks are emitted only for
/// calls whose receiver is in Vars — so across a partition every check
/// is emitted by exactly one slice's program.
struct BuildRestriction {
  std::vector<std::string> Vars;

  bool contains(const std::string &V) const {
    for (const std::string &X : Vars)
      if (X == V)
        return true;
    return false;
  }
};

BooleanProgram buildBooleanProgram(const wp::DerivedAbstraction &Abs,
                                   const cj::CFGMethod &M,
                                   DiagnosticEngine &Diags,
                                   const BuildRestriction &Restrict);

/// The canonical (unrestricted) check enumeration of \p M, without the
/// boolean program around it: identical to
/// buildBooleanProgram(Abs, M, Diags).Checks in count, order, Edge,
/// What, Loc, ReqLoc, and constant folding, except that a check backed
/// by a boolean variable reports Var == -2 (no variable table is
/// built). The per-slice certification paths need only this
/// enumeration to index claims — the full instantiation is
/// O(edges · boolvars) and dominates their fixed overhead.
std::vector<Check> enumerateChecks(const wp::DerivedAbstraction &Abs,
                                   const cj::CFGMethod &M,
                                   DiagnosticEngine &Diags);

} // namespace bp
} // namespace canvas

#endif // CANVAS_BOOLPROG_BOOLEANPROGRAM_H
