#include "boolprog/BooleanProgram.h"

#include "support/ErrorHandling.h"

#include <map>

using namespace canvas;
using namespace canvas::bp;
using namespace canvas::wp;

int BooleanProgram::findVar(const std::string &Name) const {
  for (size_t I = 0; I != Vars.size(); ++I)
    if (Vars[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

std::string BooleanProgram::str() const {
  std::string Out = "Boolean program for " + CFG->name() + " (" +
                    std::to_string(Vars.size()) + " variables)\n";
  for (size_t I = 0; I != Vars.size(); ++I)
    Out += "  b" + std::to_string(I) + ": [" + Vars[I].Name + "]\n";
  for (size_t E = 0; E != EdgeAssignments.size(); ++E) {
    if (EdgeAssignments[E].empty())
      continue;
    Out += "  edge " + std::to_string(CFG->Edges[E].From) + "->" +
           std::to_string(CFG->Edges[E].To) + " (" + CFG->Edges[E].Act.str() +
           "):\n";
    for (const auto &[Tgt, Rhs] : EdgeAssignments[E]) {
      Out += "    b" + std::to_string(Tgt) + " := ";
      switch (Rhs.K) {
      case BoolRhs::Kind::Const:
        Out += Rhs.PlusOne ? "1" : "0";
        break;
      case BoolRhs::Kind::Unknown:
        Out += "?";
        break;
      case BoolRhs::Kind::Or: {
        bool First = true;
        if (Rhs.PlusOne) {
          Out += "1";
          First = false;
        }
        for (int S : Rhs.Sources) {
          if (!First)
            Out += " || ";
          Out += "b" + std::to_string(S);
          First = false;
        }
        if (First)
          Out += "0";
        break;
      }
      }
      Out += "\n";
    }
  }
  return Out;
}

namespace {

/// Result of instantiating a predicate application over client variables.
enum class AppValue { False, True, Variable, Missing };

class Builder {
public:
  /// \p ChecksOnly skips the variable table and edge assignments and
  /// lowers only the requires obligations — the cheap mode behind
  /// bp::enumerateChecks. It must stay check-for-check identical to the
  /// full build: both run the same instantiateApp classification, so
  /// constant folding and "(unknown operand)" texts agree.
  Builder(const DerivedAbstraction &Abs, const cj::CFGMethod &M,
          DiagnosticEngine &Diags, const BuildRestriction *Restrict,
          bool ChecksOnly = false)
      : Abs(Abs), M(M), Diags(Diags), Restrict(Restrict),
        ChecksOnly(ChecksOnly) {}

  BooleanProgram run() {
    Out.CFG = &M;
    Out.Abs = &Abs;
    if (!ChecksOnly)
      enumerateVars();
    Out.EdgeAssignments.resize(M.Edges.size());
    for (size_t E = 0; E != M.Edges.size(); ++E)
      lowerEdge(static_cast<int>(E));
    return std::move(Out);
  }

private:
  using Binding = std::map<std::string, std::string>;

  std::string typeOfClientVar(const std::string &Name) const {
    for (const auto &[V, T] : M.CompVars)
      if (V == Name)
        return T;
    return "";
  }

  bool allowed(const std::string &V) const {
    return !Restrict || Restrict->contains(V);
  }

  /// All component-typed client variables of type \p T (within the
  /// restriction, when one is active).
  std::vector<std::string> varsOfType(const std::string &T) const {
    std::vector<std::string> Vs;
    for (const auto &[V, Ty] : M.CompVars)
      if (Ty == T && allowed(V))
        Vs.push_back(V);
    return Vs;
  }

  int internVar(int Family, std::vector<std::string> Args,
                Conjunction Body) {
    std::string Name = conjunctionStr(Body);
    auto It = VarIndex.find(Name);
    if (It != VarIndex.end())
      return It->second;
    int Idx = static_cast<int>(Out.Vars.size());
    Out.Vars.push_back({Family, std::move(Args), std::move(Body), Name});
    VarIndex.emplace(std::move(Name), Idx);
    return Idx;
  }

  /// Enumerates every instrumentation-predicate instance over the
  /// method's component variables (the set shown at the top of Fig. 6).
  void enumerateVars() {
    for (size_t F = 0; F != Abs.Families.size(); ++F) {
      const PredicateFamily &Fam = Abs.Families[F];
      std::vector<std::string> Tuple(Fam.arity());
      enumerateTuples(static_cast<int>(F), Fam, 0, Tuple);
    }
  }

  void enumerateTuples(int F, const PredicateFamily &Fam, unsigned Slot,
                       std::vector<std::string> &Tuple) {
    if (Slot == Fam.arity()) {
      Conjunction Body;
      if (instantiateFamily(Fam, Tuple, Fam.VarTypes, Body) ==
          InstResult::Conj)
        internVar(F, Tuple, std::move(Body));
      return;
    }
    for (const std::string &V : varsOfType(Fam.VarTypes[Slot])) {
      Tuple[Slot] = V;
      enumerateTuples(F, Fam, Slot + 1, Tuple);
    }
  }

  /// Instantiates \p App under \p B; fills \p VarIdx for Variable.
  AppValue instantiateApp(const PredApp &App, const Binding &B, int &VarIdx) {
    const PredicateFamily &Fam = Abs.Families[App.Family];
    std::vector<std::string> Args(App.Args.size());
    for (size_t I = 0; I != App.Args.size(); ++I) {
      auto It = B.find(App.Args[I]);
      if (It == B.end() || It->second.empty())
        return AppValue::Missing;
      Args[I] = It->second;
    }
    // A restricted build tracks no facts spanning the restriction
    // boundary; such applications read as constant false (cross-slice
    // predicates are false whenever their operands are initialized —
    // DESIGN.md "Stage 0 pre-analysis").
    for (const std::string &A : Args)
      if (!allowed(A))
        return AppValue::False;
    Conjunction Body;
    switch (instantiateFamily(Fam, Args, Fam.VarTypes, Body)) {
    case InstResult::False:
      return AppValue::False;
    case InstResult::True:
      return AppValue::True;
    case InstResult::Conj:
      break;
    }
    VarIdx = ChecksOnly ? -2
                        : internVar(App.Family, std::move(Args),
                                    std::move(Body));
    return AppValue::Variable;
  }

  void assign(int Edge, int Tgt, BoolRhs Rhs) {
    for (const auto &[T, R] : Out.EdgeAssignments[Edge])
      if (T == Tgt)
        return; // First instantiation wins (duplicates are equal).
    Out.EdgeAssignments[Edge].emplace_back(Tgt, std::move(Rhs));
  }

  void clobberAll(int Edge) {
    for (size_t V = 0; V != Out.Vars.size(); ++V) {
      BoolRhs R;
      R.K = BoolRhs::Kind::Unknown;
      assign(Edge, static_cast<int>(V), std::move(R));
    }
  }

  void havocVar(int Edge, const std::string &X) {
    for (size_t V = 0; V != Out.Vars.size(); ++V) {
      const BoolVar &BV = Out.Vars[V];
      bool Mentions = false;
      for (const std::string &A : BV.Args)
        Mentions |= A == X;
      if (!Mentions)
        continue;
      BoolRhs R;
      R.K = BoolRhs::Kind::Unknown;
      assign(Edge, static_cast<int>(V), std::move(R));
    }
  }

  void lowerEdge(int E) {
    const cj::Action &A = M.Edges[E].Act;
    if (ChecksOnly && A.K != cj::Action::Kind::AllocComp &&
        A.K != cj::Action::Kind::CompCall)
      return; // Only call edges carry requires obligations.
    switch (A.K) {
    case cj::Action::Kind::Nop:
      return;
    case cj::Action::Kind::Havoc:
      havocVar(E, A.Lhs);
      return;
    case cj::Action::Kind::OpaqueEffect:
      clobberAll(E);
      return;
    case cj::Action::Kind::ClientCall:
      // The intraprocedural certifier treats client calls conservatively;
      // the interprocedural certifier (Section 8) never consults these
      // edge assignments for ClientCall edges.
      clobberAll(E);
      return;
    case cj::Action::Kind::Copy:
      lowerCopy(E, A);
      return;
    case cj::Action::Kind::AllocComp:
      lowerComponentCall(E, A, Abs.findMethod(A.Callee, "new"));
      return;
    case cj::Action::Kind::CompCall: {
      std::string RecvType = typeOfClientVar(A.Recv);
      lowerComponentCall(E, A, Abs.findMethod(RecvType, A.Callee));
      return;
    }
    }
  }

  void lowerCopy(int E, const cj::Action &A) {
    const std::string &X = A.Lhs;
    const std::string &Y = A.Args[0];
    std::string YType = typeOfClientVar(Y);
    // A copy source outside the restriction cannot occur for Stage-0
    // slices (copies connect both sides into one slice); havoc the
    // target's facts defensively rather than leak out-of-slice
    // variables through renaming.
    bool UnknownSource = !allowed(Y);
    for (size_t V = 0; V != Out.Vars.size(); ++V) {
      const BoolVar BV = Out.Vars[V]; // Copy: interning may reallocate.
      bool Mentions = false;
      for (const std::string &Arg : BV.Args)
        Mentions |= Arg == X;
      if (!Mentions)
        continue;
      if (UnknownSource) {
        BoolRhs R;
        R.K = BoolRhs::Kind::Unknown;
        assign(E, static_cast<int>(V), std::move(R));
        continue;
      }
      Conjunction Renamed;
      BoolRhs R;
      switch (renameRootInConjunction(BV.Body, X, Y, YType, Renamed)) {
      case InstResult::False:
        R.K = BoolRhs::Kind::Const;
        break;
      case InstResult::True:
        R.K = BoolRhs::Kind::Const;
        R.PlusOne = true;
        break;
      case InstResult::Conj: {
        std::vector<std::string> NewArgs = BV.Args;
        for (std::string &Arg : NewArgs)
          if (Arg == X)
            Arg = Y;
        int Src = internVar(BV.Family, std::move(NewArgs), std::move(Renamed));
        R.K = BoolRhs::Kind::Or;
        R.Sources = {Src};
        break;
      }
      }
      assign(E, static_cast<int>(V), std::move(R));
    }
  }

  void lowerComponentCall(int E, const cj::Action &A,
                          const MethodAbstraction *MA) {
    if (!MA) {
      Diags.error(A.Loc, "no derived abstraction for call '" + A.str() +
                             "'; clobbering all facts");
      clobberAll(E);
      return;
    }
    Binding B;
    if (MA->HasThis)
      B["this"] = A.Recv;
    for (size_t I = 0; I != MA->Params.size() && I != A.Args.size(); ++I)
      B[MA->Params[I].first] = A.Args[I];
    if (!A.Lhs.empty())
      B["ret"] = A.Lhs;

    // Requires obligations, checked in the pre-call state. Under a
    // restriction, a call's checks belong to its receiver's slice
    // (every operand of a call is in the receiver's slice, so exactly
    // one slice of a partition emits them). Constructor calls have no
    // receiver; their checks belong to the slice of the allocated
    // variable instead.
    bool OwnsChecks = allowed(A.Recv.empty() ? A.Lhs : A.Recv);
    for (const auto &[App, ReqLoc] : MA->RequiresFalse) {
      if (!OwnsChecks)
        break;
      Check C;
      C.Edge = E;
      C.Loc = A.Loc;
      C.ReqLoc = ReqLoc;
      C.What = A.str() + " requires !" + App.str(Abs.Families);
      int VarIdx = -1;
      switch (instantiateApp(App, B, VarIdx)) {
      case AppValue::False:
        C.Var = -1;
        C.ConstantViolated = false;
        break;
      case AppValue::True:
        C.Var = -1;
        C.ConstantViolated = true;
        break;
      case AppValue::Missing:
        // Unknown receiver/argument: conservatively a potential
        // violation.
        C.Var = -1;
        C.ConstantViolated = true;
        C.What += " (unknown operand)";
        break;
      case AppValue::Variable:
        C.Var = VarIdx;
        break;
      }
      Out.Checks.push_back(std::move(C));
    }
    if (ChecksOnly)
      return;

    // Update rules.
    for (const UpdateRule &R : MA->Rules) {
      if (R.IsIdentity)
        continue;
      const PredicateFamily &Fam = Abs.Families[R.Family];
      bool UsesRet = false;
      for (bool S : R.RetSlots)
        UsesRet |= S;
      if (UsesRet && (A.Lhs.empty() || !allowed(A.Lhs)))
        continue; // Unnamed or out-of-restriction result: not tracked.
      std::vector<std::string> Tuple(Fam.arity());
      instantiateRule(E, A, R, Fam, B, 0, Tuple);
    }
  }

  /// Enumerates target tuples for rule \p R: "ret" slots take the call's
  /// result variable; quantified slots range over the other component
  /// variables of the slot type.
  void instantiateRule(int E, const cj::Action &A, const UpdateRule &R,
                       const PredicateFamily &Fam, const Binding &BaseBind,
                       unsigned Slot, std::vector<std::string> &Tuple) {
    if (Slot == Fam.arity()) {
      Conjunction Body;
      if (instantiateFamily(Fam, Tuple, Fam.VarTypes, Body) !=
          InstResult::Conj)
        return;
      int Tgt = internVar(R.Family, Tuple, std::move(Body));

      Binding B = BaseBind;
      for (unsigned I = 0; I != Fam.arity(); ++I)
        if (!R.RetSlots[I])
          B["$q" + std::to_string(I)] = Tuple[I];

      BoolRhs Rhs;
      Rhs.K = BoolRhs::Kind::Or;
      Rhs.PlusOne = R.ConstantTrue;
      for (const PredApp &Src : R.Sources) {
        int VarIdx = -1;
        switch (instantiateApp(Src, B, VarIdx)) {
        case AppValue::False:
          break;
        case AppValue::True:
          Rhs.PlusOne = true;
          break;
        case AppValue::Variable:
          Rhs.Sources.push_back(VarIdx);
          break;
        case AppValue::Missing:
          // An unknown operand contributes an unknown disjunct.
          Rhs.K = BoolRhs::Kind::Unknown;
          break;
        }
      }
      if (Rhs.K == BoolRhs::Kind::Or && Rhs.Sources.empty())
        Rhs.K = BoolRhs::Kind::Const;
      assign(E, Tgt, std::move(Rhs));
      return;
    }
    if (R.RetSlots[Slot]) {
      Tuple[Slot] = A.Lhs;
      instantiateRule(E, A, R, Fam, BaseBind, Slot + 1, Tuple);
      return;
    }
    for (const std::string &V : varsOfType(Fam.VarTypes[Slot])) {
      if (!A.Lhs.empty() && V == A.Lhs)
        continue; // The result variable's facts come from ret slots.
      Tuple[Slot] = V;
      instantiateRule(E, A, R, Fam, BaseBind, Slot + 1, Tuple);
    }
  }

  const DerivedAbstraction &Abs;
  const cj::CFGMethod &M;
  DiagnosticEngine &Diags;
  const BuildRestriction *Restrict;
  const bool ChecksOnly;
  BooleanProgram Out;
  std::map<std::string, int> VarIndex;
};

} // namespace

BooleanProgram bp::buildBooleanProgram(const DerivedAbstraction &Abs,
                                       const cj::CFGMethod &M,
                                       DiagnosticEngine &Diags) {
  return Builder(Abs, M, Diags, nullptr).run();
}

BooleanProgram bp::buildBooleanProgram(const DerivedAbstraction &Abs,
                                       const cj::CFGMethod &M,
                                       DiagnosticEngine &Diags,
                                       const BuildRestriction &Restrict) {
  return Builder(Abs, M, Diags, &Restrict).run();
}

std::vector<Check> bp::enumerateChecks(const DerivedAbstraction &Abs,
                                       const cj::CFGMethod &M,
                                       DiagnosticEngine &Diags) {
  return std::move(
      Builder(Abs, M, Diags, nullptr, /*ChecksOnly=*/true).run().Checks);
}
