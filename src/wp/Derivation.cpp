//===----------------------------------------------------------------------===//
///
/// \file
/// The staged abstraction-derivation fixpoint of Sections 4.1/4.2:
///
///  1. Every "requires phi" contributes the disjuncts of !phi as seed
///     candidate instrumentation predicates.
///  2. For every predicate family and component method, the weakest
///     precondition of the (possibly ret-instantiated) family body is
///     computed symbolically, simplified with congruence closure under
///     the method precondition, and split at disjunctions (rule 2); each
///     disjunct becomes (or rediscovers) a family and a source of the
///     method's update rule.
///  3. Repeat until no new families appear (guaranteed for
///     mutation-restricted specifications, Section 6) or the family cap
///     is hit.
///
//===----------------------------------------------------------------------===//

#include "logic/CongruenceClosure.h"
#include "support/ErrorHandling.h"
#include "wp/Abstraction.h"
#include "wp/WPEngine.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

using namespace canvas;
using namespace canvas::wp;
using namespace canvas::easl;

namespace {

/// A typed variable occurring free in a conjunction.
struct TypedVar {
  std::string Name;
  std::string Type;

  friend bool operator==(const TypedVar &A, const TypedVar &B) {
    return A.Name == B.Name && A.Type == B.Type;
  }
};

/// Collects the distinct root variables of \p C in order of first
/// occurrence.
std::vector<TypedVar> freeVarsOf(const Conjunction &C) {
  std::vector<TypedVar> Vars;
  auto Add = [&](const Path &P) {
    if (P.rootKind() != Path::RootKind::Var)
      return;
    TypedVar V{P.rootName(), P.rootType()};
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);
  };
  for (const Literal &L : C) {
    Add(L.Lhs);
    Add(L.Rhs);
  }
  return Vars;
}

class Derivation {
public:
  Derivation(const Spec &S, const DerivationOptions &Opts,
             DiagnosticEngine &Diags)
      : S(S), Opts(Opts), Diags(Diags), Engine(S, Diags) {}

  DerivedAbstraction run() {
    buildMethodEntries();
    seedFromRequires();
    processWorklist();
    for (Entry &E : Entries)
      Result.Methods.push_back(std::move(E.Abs));
    return std::move(Result);
  }

private:
  struct Entry {
    const ClassDecl *Class = nullptr;
    const MethodDecl *Method = nullptr; ///< Null for ctor-less "new".
    bool IsCtor = false;
    /// Precondition literals (conjunction), usable as simplification
    /// context; empty when the precondition is absent or not a single
    /// conjunction.
    Conjunction Precondition;
    MethodAbstraction Abs;
  };

  void buildMethodEntries() {
    for (const ClassDecl &C : S.Classes) {
      // The constructor pseudo-method "new", used by client statements
      // "x = new C(...)".
      Entry Ctor;
      Ctor.Class = &C;
      Ctor.Method = C.constructor();
      Ctor.IsCtor = true;
      Ctor.Abs.ClassName = C.Name;
      Ctor.Abs.MethodName = "new";
      Ctor.Abs.HasThis = false;
      Ctor.Abs.ReturnsValue = true;
      Ctor.Abs.ReturnType = C.Name;
      if (Ctor.Method)
        for (const Param &P : Ctor.Method->Params)
          Ctor.Abs.Params.emplace_back(P.Name, P.Type);
      Entries.push_back(std::move(Ctor));

      for (const MethodDecl &M : C.Methods) {
        if (M.IsConstructor)
          continue;
        Entry E;
        E.Class = &C;
        E.Method = &M;
        E.Abs.ClassName = C.Name;
        E.Abs.MethodName = M.Name;
        E.Abs.HasThis = true;
        E.Abs.ReturnsValue = M.ReturnType != "void";
        if (E.Abs.ReturnsValue)
          E.Abs.ReturnType = M.ReturnType;
        for (const Param &P : M.Params)
          E.Abs.Params.emplace_back(P.Name, P.Type);
        E.Precondition = preconditionOf(C, M);
        Entries.push_back(std::move(E));
      }
    }
  }

  /// Entry requires clauses as one conjunction, when each clause's
  /// condition has a single-disjunct DNF.
  Conjunction preconditionOf(const ClassDecl &C, const MethodDecl &M) {
    Conjunction Pre;
    for (const StmtPtr &St : M.Body) {
      const auto *Req = dyn_cast<RequiresStmt>(St.get());
      if (!Req)
        break;
      FormulaRef Cond = Engine.translateMethodCondition(C, M, *Req->Cond);
      std::vector<Conjunction> DNF = toDNF(Cond);
      if (DNF.size() != 1)
        continue;
      Pre.insert(Pre.end(), DNF.front().begin(), DNF.front().end());
    }
    normalizeConjunction(Pre);
    return Pre;
  }

  void seedFromRequires() {
    for (Entry &E : Entries) {
      if (!E.Method || E.IsCtor)
        continue;
      for (const StmtPtr &St : E.Method->Body) {
        const auto *Req = dyn_cast<RequiresStmt>(St.get());
        if (!Req)
          break;
        FormulaRef Violation = Formula::notOf(
            Engine.translateMethodCondition(*E.Class, *E.Method, *Req->Cond));
        for (Conjunction D : toDNF(Violation)) {
          if (Opts.SimplifyWithCC && !simplifyDisjunct(D, Conjunction()))
            continue;
          if (D.empty()) {
            Diags.error(Req->Loc, "requires clause is unsatisfiable");
            continue;
          }
          auto [FamIdx, Args] = internConjunction(D);
          if (FamIdx < 0)
            continue;
          E.Abs.RequiresFalse.push_back(
              {PredApp{FamIdx, std::move(Args)}, Req->Loc});
        }
      }
    }
  }

  /// Determines whether a value-returning method always returns a fresh
  /// object: WP of "ret == q" (q a symbolic pre-state variable) must be
  /// identically false.
  void computeReturnsFresh(Entry &E) {
    if (!E.Abs.ReturnsValue)
      return;
    FormulaRef Post =
        Formula::eq(Path::var("ret", E.Abs.ReturnType),
                    Path::var("$qret", E.Abs.ReturnType));
    FormulaRef Pre = E.IsCtor
                         ? Engine.wpConstructorCall(*E.Class, Post)
                         : Engine.wpMethodCall(*E.Class, *E.Method, Post);
    E.Abs.ReturnsFresh = Pre->isFalse();
  }

  void processWorklist() {
    for (Entry &E : Entries)
      computeReturnsFresh(E);
    while (!Worklist.empty()) {
      int FamIdx = Worklist.front();
      Worklist.pop_front();
      for (Entry &E : Entries)
        deriveRules(FamIdx, E);
      if (Result.Families.size() > Opts.MaxFamilies) {
        Result.Converged = false;
        Diags.warning(SourceLoc(),
                      "derivation stopped: family cap (" +
                          std::to_string(Opts.MaxFamilies) + ") exceeded");
        Worklist.clear();
      }
    }
  }

  void deriveRules(int FamIdx, Entry &E) {
    // Copy: interning new families may reallocate Result.Families.
    const PredicateFamily Fam = Result.Families[FamIdx];
    unsigned K = Fam.arity();
    for (unsigned Mask = 0; Mask != (1u << K); ++Mask) {
      std::vector<bool> RetSlots(K, false);
      std::vector<std::string> Args(K);
      bool Feasible = true;
      for (unsigned I = 0; I != K; ++I) {
        if (Mask & (1u << I)) {
          if (!E.Abs.ReturnsValue || Fam.VarTypes[I] != E.Abs.ReturnType) {
            Feasible = false;
            break;
          }
          RetSlots[I] = true;
          Args[I] = "ret";
        } else {
          Args[I] = "$q" + std::to_string(I);
        }
      }
      if (!Feasible)
        continue;

      Conjunction Body;
      if (instantiateFamily(Fam, Args, Fam.VarTypes, Body) !=
          InstResult::Conj)
        continue; // Constant instances are folded by the client analysis.

      FormulaRef Post = fromDNF({Body});
      FormulaRef Pre =
          E.IsCtor ? Engine.wpConstructorCall(*E.Class, Post)
                   : Engine.wpMethodCall(*E.Class, *E.Method, Post);
      ++Result.NumWPComputations;

      UpdateRule Rule;
      Rule.Family = FamIdx;
      Rule.RetSlots = RetSlots;
      const Conjunction &Context =
          Opts.AssumePrecondition ? E.Precondition : EmptyConjunction;
      std::set<std::string> SeenSources;
      std::vector<Conjunction> Disjuncts;
      for (Conjunction D : toDNF(Pre)) {
        if (Opts.SimplifyWithCC) {
          if (!simplifyDisjunct(D, Context))
            continue;
        } else if (!Context.empty()) {
          Conjunction WithCtx = D;
          WithCtx.insert(WithCtx.end(), Context.begin(), Context.end());
          if (!conjunctionConsistent(WithCtx))
            continue;
        }
        Disjuncts.push_back(std::move(D));
      }
      if (Opts.SimplifyWithCC)
        removeSubsumedDisjuncts(Disjuncts, Context);
      for (Conjunction &D : Disjuncts) {
        if (D.empty()) {
          Rule.ConstantTrue = true;
          continue;
        }
        if (mentionsRet(D)) {
          Diags.error(SourceLoc(),
                      "internal: WP disjunct mentions 'ret' (method '" +
                          E.Abs.ClassName + "::" + E.Abs.MethodName + "')");
          continue;
        }
        auto [SrcIdx, SrcArgs] = internConjunction(D);
        if (SrcIdx < 0)
          continue;
        PredApp App{SrcIdx, std::move(SrcArgs)};
        if (SeenSources.insert(App.str(Result.Families)).second)
          Rule.Sources.push_back(std::move(App));
      }
      Rule.IsIdentity = !Rule.ConstantTrue && Rule.Sources.size() == 1 &&
                        Rule.Sources.front() == Rule.target();
      E.Abs.Rules.push_back(std::move(Rule));
    }
  }

  static bool mentionsRet(const Conjunction &C) {
    for (const TypedVar &V : freeVarsOf(C))
      if (V.Name == "ret")
        return true;
    return false;
  }

  /// Finds or creates the family whose body is \p C up to variable
  /// renaming. Returns the family index and the argument names (C's free
  /// variables in the family's canonical slot order).
  std::pair<int, std::vector<std::string>>
  internConjunction(const Conjunction &C) {
    std::vector<TypedVar> Vars = freeVarsOf(C);
    unsigned N = Vars.size();
    if (N == 0) {
      Diags.error(SourceLoc(), "internal: variable-free candidate predicate");
      return {-1, {}};
    }
    if (N > 6) {
      Diags.warning(SourceLoc(), "candidate predicate with more than 6 free "
                                 "variables; skipping");
      return {-1, {}};
    }

    std::vector<unsigned> Perm(N);
    for (unsigned I = 0; I != N; ++I)
      Perm[I] = I;

    std::string BestKey;
    std::vector<unsigned> BestPerm;
    Conjunction BestBody;
    do {
      Conjunction Renamed;
      for (const Literal &L : C) {
        auto Rename = [&](const Path &P) {
          if (P.rootKind() != Path::RootKind::Var)
            return P;
          for (unsigned J = 0; J != N; ++J)
            if (P.rootName() == Vars[Perm[J]].Name)
              return P.withRoot(PredicateFamily::slotName(J),
                                Vars[Perm[J]].Type);
          return P;
        };
        Renamed.emplace_back(L.Negated, Rename(L.Lhs), Rename(L.Rhs));
      }
      normalizeConjunction(Renamed);
      std::string Key;
      for (unsigned J = 0; J != N; ++J)
        Key += Vars[Perm[J]].Type + ",";
      Key += "|" + conjunctionStr(Renamed);
      if (BestKey.empty() || Key < BestKey) {
        BestKey = std::move(Key);
        BestPerm = Perm;
        BestBody = std::move(Renamed);
      }
    } while (std::next_permutation(Perm.begin(), Perm.end()));

    std::vector<std::string> Args(N);
    for (unsigned J = 0; J != N; ++J)
      Args[J] = Vars[BestPerm[J]].Name;

    auto It = FamilyIndex.find(BestKey);
    if (It != FamilyIndex.end())
      return {It->second, Args};

    PredicateFamily Fam;
    for (unsigned J = 0; J != N; ++J)
      Fam.VarTypes.push_back(Vars[BestPerm[J]].Type);
    Fam.Body = std::move(BestBody);
    Fam.Key = BestKey;
    Fam.DisplayName = "P" + std::to_string(Result.Families.size());
    int Idx = static_cast<int>(Result.Families.size());
    Result.Families.push_back(std::move(Fam));
    FamilyIndex.emplace(std::move(BestKey), Idx);
    Worklist.push_back(Idx);
    return {Idx, Args};
  }

  const Spec &S;
  DerivationOptions Opts;
  DiagnosticEngine &Diags;
  WPEngine Engine;
  DerivedAbstraction Result;
  std::vector<Entry> Entries;
  std::map<std::string, int> FamilyIndex;
  std::deque<int> Worklist;
  Conjunction EmptyConjunction;
};

} // namespace

DerivedAbstraction wp::deriveAbstraction(const Spec &S,
                                         const DerivationOptions &Opts,
                                         DiagnosticEngine &Diags) {
  return Derivation(S, Opts, Diags).run();
}

DerivedAbstraction wp::deriveAbstraction(const Spec &S,
                                         DiagnosticEngine &Diags) {
  return deriveAbstraction(S, DerivationOptions(), Diags);
}
