#include "wp/Abstraction.h"

#include "logic/CongruenceClosure.h"

#include <cassert>

using namespace canvas;
using namespace canvas::wp;

std::string PredicateFamily::str() const {
  std::string Out = DisplayName + "(";
  for (unsigned I = 0; I != arity(); ++I) {
    if (I)
      Out += ", ";
    Out += slotName(I) + ":" + VarTypes[I];
  }
  Out += ") := " + conjunctionStr(Body);
  return Out;
}

std::string PredApp::str(const std::vector<PredicateFamily> &Families) const {
  assert(Family >= 0 && static_cast<size_t>(Family) < Families.size());
  std::string Out = Families[Family].DisplayName + "(";
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I];
  }
  Out += ")";
  return Out;
}

PredApp UpdateRule::target() const {
  PredApp App;
  App.Family = Family;
  for (size_t I = 0; I != RetSlots.size(); ++I)
    App.Args.push_back(RetSlots[I] ? "ret" : "$q" + std::to_string(I));
  return App;
}

std::string
UpdateRule::str(const std::vector<PredicateFamily> &Families) const {
  std::string Out = target().str(Families) + " := ";
  if (ConstantTrue)
    Out += "1";
  if (Sources.empty() && !ConstantTrue)
    Out += "0";
  for (size_t I = 0; I != Sources.size(); ++I) {
    if (I || ConstantTrue)
      Out += " || ";
    Out += Sources[I].str(Families);
  }
  return Out;
}

std::string
MethodAbstraction::str(const std::vector<PredicateFamily> &Families) const {
  std::string Out = ClassName + "::" + MethodName + "(";
  for (size_t I = 0; I != Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Params[I].first + ":" + Params[I].second;
  }
  Out += ")";
  if (ReturnsValue)
    Out += " -> " + ReturnType;
  Out += "\n";
  for (const auto &[App, Loc] : RequiresFalse)
    Out += "  requires !" + App.str(Families) + "\n";
  for (const UpdateRule &R : Rules) {
    if (R.IsIdentity)
      continue;
    Out += "  " + R.str(Families) + "\n";
  }
  return Out;
}

const MethodAbstraction *
DerivedAbstraction::findMethod(const std::string &ClassName,
                               const std::string &MethodName) const {
  for (const MethodAbstraction &M : Methods)
    if (M.ClassName == ClassName && M.MethodName == MethodName)
      return &M;
  return nullptr;
}

int DerivedAbstraction::findFamily(const std::string &Key) const {
  for (size_t I = 0; I != Families.size(); ++I)
    if (Families[I].Key == Key)
      return static_cast<int>(I);
  return -1;
}

std::string DerivedAbstraction::str() const {
  std::string Out = "Instrumentation predicate families:\n";
  for (const PredicateFamily &F : Families)
    Out += "  " + F.str() + "\n";
  Out += "\nMethod abstractions:\n";
  for (const MethodAbstraction &M : Methods)
    Out += M.str(Families);
  return Out;
}

//===----------------------------------------------------------------------===//
// Instantiation
//===----------------------------------------------------------------------===//

static InstResult finishInstantiation(Conjunction &Out) {
  if (!normalizeConjunction(Out))
    return InstResult::False;
  if (!conjunctionConsistent(Out))
    return InstResult::False;
  if (Out.empty())
    return InstResult::True;
  return InstResult::Conj;
}

InstResult wp::instantiateFamily(const PredicateFamily &F,
                                 const std::vector<std::string> &Args,
                                 const std::vector<std::string> &ArgTypes,
                                 Conjunction &Out) {
  assert(Args.size() == F.arity() && ArgTypes.size() == F.arity() &&
         "family instantiated with wrong arity");
  Out.clear();
  for (const Literal &L : F.Body) {
    auto SubstRoot = [&](const Path &P) {
      for (unsigned I = 0; I != F.arity(); ++I)
        if (P.rootKind() == Path::RootKind::Var &&
            P.rootName() == PredicateFamily::slotName(I))
          return P.withRoot(Args[I], ArgTypes[I]);
      return P;
    };
    Out.emplace_back(L.Negated, SubstRoot(L.Lhs), SubstRoot(L.Rhs));
  }
  return finishInstantiation(Out);
}

InstResult wp::renameRootInConjunction(const Conjunction &C,
                                       const std::string &From,
                                       const std::string &To,
                                       const std::string &ToType,
                                       Conjunction &Out) {
  Out.clear();
  for (const Literal &L : C) {
    auto SubstRoot = [&](const Path &P) {
      if (P.rootKind() == Path::RootKind::Var && P.rootName() == From)
        return P.withRoot(To, ToType);
      return P;
    };
    Out.emplace_back(L.Negated, SubstRoot(L.Lhs), SubstRoot(L.Rhs));
  }
  return finishInstantiation(Out);
}
