//===----------------------------------------------------------------------===//
///
/// \file
/// Backward symbolic weakest-precondition computation over Easl method
/// bodies (Section 4.1, rule 3): WP(S, phi) holds before executing S iff
/// phi holds after.
///
/// Assignments through fields generate alias case-splits (the source of
/// the paper's "mutx" predicate); allocations introduce fresh handles
/// that are resolved against pre-state paths at method entry (a fresh
/// object differs from every pre-existing one).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_WP_WPENGINE_H
#define CANVAS_WP_WPENGINE_H

#include "easl/AST.h"
#include "logic/Formula.h"
#include "support/Diagnostics.h"

#include <map>
#include <span>
#include <string>

namespace canvas {
namespace wp {

/// Computes weakest preconditions of path formulas with respect to
/// component-method invocations.
///
/// Binder naming convention for the resulting pre-state formulas:
/// the receiver is the variable "this", parameters keep their declared
/// names, and the method result is "ret". Free variables of the
/// post-state formula pass through unchanged.
class WPEngine {
public:
  WPEngine(const easl::Spec &S, DiagnosticEngine &Diags)
      : S(S), Diags(Diags) {}

  /// WP of \p Post across a call to method \p M of class \p C
  /// ("x = recv.m(args)" shape). Fresh handles are resolved on return.
  FormulaRef wpMethodCall(const easl::ClassDecl &C, const easl::MethodDecl &M,
                          FormulaRef Post);

  /// WP of \p Post across "x = new C(args)". The constructor's parameters
  /// are the binders; there is no "this" binder.
  FormulaRef wpConstructorCall(const easl::ClassDecl &C, FormulaRef Post);

  /// Translates a requires/if condition under the standard top-level
  /// binder environment of method \p M of class \p C.
  FormulaRef translateMethodCondition(const easl::ClassDecl &C,
                                      const easl::MethodDecl &M,
                                      const easl::Expr &E);

private:
  /// One inlining frame: the lexical scope of a method body plus the
  /// bindings of this/parameters to pre-state paths or fresh handles.
  struct Frame {
    const easl::ClassDecl *Class = nullptr;
    const easl::MethodDecl *Method = nullptr;
    std::map<std::string, Path> Env;
  };

  Path resolvePath(const Frame &F, const easl::PathExpr &P);
  FormulaRef translateExpr(const Frame &F, const easl::Expr &E);

  FormulaRef wpStmtList(std::span<const easl::StmtPtr> Stmts, const Frame &F,
                        FormulaRef Phi);
  FormulaRef wpStmt(const easl::Stmt &St, const Frame &F, FormulaRef Phi);

  /// WP of "Lhs := new ClassName(Args)" including constructor inlining.
  FormulaRef wpAlloc(const Path &Lhs, const std::string &ClassName,
                     const std::vector<Path> &Args, SourceLoc Loc,
                     FormulaRef Phi);

  /// Substitution for "Lhs := Rhs" where Lhs is a variable or a field
  /// path; field targets use alias case-splits.
  FormulaRef substAssign(const Path &Lhs, const Path &Rhs, FormulaRef Phi);

  /// Replaces atoms mentioning fresh handles by constants: a fresh object
  /// is distinct from every pre-state object.
  FormulaRef resolveFresh(FormulaRef Phi);

  Path makeFresh(const std::string &Type) {
    return Path::fresh(FreshCounter++, Type);
  }

  const easl::Spec &S;
  DiagnosticEngine &Diags;
  unsigned FreshCounter = 0;
};

} // namespace wp
} // namespace canvas

#endif // CANVAS_WP_WPENGINE_H
