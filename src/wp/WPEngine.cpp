#include "wp/WPEngine.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <functional>

using namespace canvas;
using namespace canvas::wp;
using namespace canvas::easl;

//===----------------------------------------------------------------------===//
// Name resolution and condition translation
//===----------------------------------------------------------------------===//

Path WPEngine::resolvePath(const Frame &F, const PathExpr &P) {
  if (P.Components.empty())
    return Path::var("<error>", "<error>");
  const std::string &Root = P.Components.front();
  Path Base;
  size_t FirstField = 1;
  auto It = F.Env.find(Root);
  if (It != F.Env.end()) {
    Base = It->second;
  } else if (F.Class && F.Class->findField(Root)) {
    // Implicit this-qualification of a field name.
    auto ThisIt = F.Env.find("this");
    if (ThisIt == F.Env.end()) {
      Diags.error(P.Loc, "field '" + Root + "' used without a receiver");
      return Path::var("<error>", "<error>");
    }
    Base = ThisIt->second.withField(Root);
  } else {
    Diags.error(P.Loc, "unresolved name '" + Root + "'");
    return Path::var("<error>", "<error>");
  }
  for (size_t I = FirstField, E = P.Components.size(); I != E; ++I)
    Base = Base.withField(P.Components[I]);
  return Base;
}

FormulaRef WPEngine::translateExpr(const Frame &F, const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::Compare: {
    const auto *C = cast<CompareExpr>(&E);
    FormulaRef Eq = Formula::eq(resolvePath(F, C->Lhs), resolvePath(F, C->Rhs));
    return C->Negated ? Formula::notOf(Eq) : Eq;
  }
  case Expr::Kind::And: {
    std::vector<FormulaRef> Ops;
    for (const ExprPtr &Op : cast<AndExpr>(&E)->Operands)
      Ops.push_back(translateExpr(F, *Op));
    return Formula::andOf(std::move(Ops));
  }
  case Expr::Kind::Or: {
    std::vector<FormulaRef> Ops;
    for (const ExprPtr &Op : cast<OrExpr>(&E)->Operands)
      Ops.push_back(translateExpr(F, *Op));
    return Formula::orOf(std::move(Ops));
  }
  case Expr::Kind::Not:
    return Formula::notOf(translateExpr(F, *cast<NotExpr>(&E)->Operand));
  case Expr::Kind::BoolConst:
    return cast<BoolConstExpr>(&E)->Value ? Formula::getTrue()
                                          : Formula::getFalse();
  }
  canvas_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Atom rewriting helpers
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds \p Phi, replacing every Eq atom by AtomFn(lhs, rhs).
FormulaRef
mapAtoms(const FormulaRef &Phi,
         const std::function<FormulaRef(const Path &, const Path &)> &AtomFn) {
  switch (Phi->getKind()) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return Phi;
  case Formula::Kind::Eq:
    return AtomFn(Phi->lhs(), Phi->rhs());
  case Formula::Kind::Not:
    return Formula::notOf(mapAtoms(Phi->operand(), AtomFn));
  case Formula::Kind::And:
  case Formula::Kind::Or: {
    std::vector<FormulaRef> Ops;
    for (const FormulaRef &C : Phi->operands())
      Ops.push_back(mapAtoms(C, AtomFn));
    return Phi->getKind() == Formula::Kind::And
               ? Formula::andOf(std::move(Ops))
               : Formula::orOf(std::move(Ops));
  }
  }
  canvas_unreachable("covered switch");
}

/// One pre-state reading of a post-state path under a field update:
/// the path evaluates to Value when Cond (a conjunction rendered as a
/// formula) holds.
struct PathCase {
  FormulaRef Cond;
  Path Value;
};

/// Enumerates the pre-state readings of \p P under the update
/// "Base.Field := Rhs". Walking P from its root, every intermediate
/// object whose next selector is Field may or may not be the updated
/// object Base; each maybe-alias splits the reading in two.
std::vector<PathCase> substPathCases(const Path &P, const Path &Base,
                                     const std::string &Field,
                                     const Path &Rhs) {
  Path Root = P;
  // Reset to the bare root of P.
  Root = Path::var(P.rootName(), P.rootType());
  if (P.rootKind() == Path::RootKind::Fresh)
    Root = Path::fresh(P.freshId(), P.rootType());

  std::vector<PathCase> Cases = {{Formula::getTrue(), Root}};
  for (const std::string &G : P.fields()) {
    std::vector<PathCase> Next;
    for (PathCase &C : Cases) {
      if (G == Field) {
        Next.push_back({Formula::andOf(C.Cond, Formula::eq(C.Value, Base)),
                        Rhs});
        Next.push_back({Formula::andOf(C.Cond, Formula::ne(C.Value, Base)),
                        C.Value.withField(G)});
      } else {
        Next.push_back({C.Cond, C.Value.withField(G)});
      }
    }
    Cases = std::move(Next);
  }
  // Prune cases whose condition already folded to false (e.g. a fresh
  // handle compared against itself).
  std::vector<PathCase> Live;
  for (PathCase &C : Cases)
    if (!C.Cond->isFalse())
      Live.push_back(std::move(C));
  return Live;
}

} // namespace

FormulaRef WPEngine::substAssign(const Path &Lhs, const Path &Rhs,
                                 FormulaRef Phi) {
  if (Lhs.length() == 0) {
    // Variable target: plain prefix substitution (variables cannot be
    // aliased by access paths).
    return mapAtoms(Phi, [&](const Path &A, const Path &B) {
      Path NewA = A.startsWith(Lhs) ? A.replacePrefix(Lhs, Rhs) : A;
      Path NewB = B.startsWith(Lhs) ? B.replacePrefix(Lhs, Rhs) : B;
      return Formula::eq(NewA, NewB);
    });
  }
  // Field target: alias case-split per atom side.
  Path Base = Lhs.parent();
  const std::string &Field = Lhs.lastField();
  return mapAtoms(Phi, [&](const Path &A, const Path &B) {
    std::vector<PathCase> ACases = substPathCases(A, Base, Field, Rhs);
    std::vector<PathCase> BCases = substPathCases(B, Base, Field, Rhs);
    std::vector<FormulaRef> Ors;
    for (const PathCase &CA : ACases)
      for (const PathCase &CB : BCases) {
        FormulaRef Conds = Formula::andOf(CA.Cond, CB.Cond);
        Ors.push_back(
            Formula::andOf(Conds, Formula::eq(CA.Value, CB.Value)));
      }
    return Formula::orOf(std::move(Ors));
  });
}

FormulaRef WPEngine::resolveFresh(FormulaRef Phi) {
  return mapAtoms(Phi, [&](const Path &A, const Path &B) -> FormulaRef {
    bool AF = A.rootKind() == Path::RootKind::Fresh;
    bool BF = B.rootKind() == Path::RootKind::Fresh;
    if (!AF && !BF)
      return Formula::eq(A, B);
    // Identical paths were folded to True by Formula::eq already.
    if (AF && BF && A.freshId() == B.freshId()) {
      // Same fresh object, different field suffixes: both sides are
      // fields of a brand-new object. Our specifications always assign
      // such fields before use; reaching here means the spec reads an
      // uninitialized field.
      Diags.warning(SourceLoc(), "comparison of uninitialized fields of a "
                                 "fresh object; treating as false");
      return Formula::getFalse();
    }
    if ((AF && A.length() > 0) || (BF && B.length() > 0)) {
      // A never-assigned field of a fresh object against anything else:
      // null against a pre-state object or another fresh object.
      return Formula::getFalse();
    }
    // A bare fresh handle against a pre-state path or a different fresh
    // handle: a new object is distinct from every other object.
    return Formula::getFalse();
  });
}

//===----------------------------------------------------------------------===//
// Statement-level WP
//===----------------------------------------------------------------------===//

FormulaRef WPEngine::wpStmtList(std::span<const StmtPtr> Stmts, const Frame &F,
                                FormulaRef Phi) {
  for (auto It = Stmts.rbegin(), E = Stmts.rend(); It != E; ++It)
    Phi = wpStmt(**It, F, Phi);
  return Phi;
}

FormulaRef WPEngine::wpStmt(const Stmt &St, const Frame &F, FormulaRef Phi) {
  switch (St.getKind()) {
  case Stmt::Kind::Requires:
    // Requires clauses constrain the client but do not change state.
    return Phi;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&St);
    Path Lhs = resolvePath(F, A->Lhs);
    if (A->Rhs.isNew()) {
      std::vector<Path> Args;
      for (const PathExpr &Arg : A->Rhs.Args)
        Args.push_back(resolvePath(F, Arg));
      return wpAlloc(Lhs, A->Rhs.NewType, Args, St.Loc, std::move(Phi));
    }
    return substAssign(Lhs, resolvePath(F, A->Rhs.P), std::move(Phi));
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(&St);
    Path Lhs = Path::var("ret", F.Method ? F.Method->ReturnType : "<error>");
    if (R->Value.isNew()) {
      std::vector<Path> Args;
      for (const PathExpr &Arg : R->Value.Args)
        Args.push_back(resolvePath(F, Arg));
      return wpAlloc(Lhs, R->Value.NewType, Args, St.Loc, std::move(Phi));
    }
    return substAssign(Lhs, resolvePath(F, R->Value.P), std::move(Phi));
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&St);
    FormulaRef Cond = translateExpr(F, *I->Cond);
    FormulaRef ThenWP = wpStmtList(I->Then, F, Phi);
    FormulaRef ElseWP = wpStmtList(I->Else, F, Phi);
    return Formula::orOf(Formula::andOf(Cond, ThenWP),
                         Formula::andOf(Formula::notOf(Cond), ElseWP));
  }
  }
  canvas_unreachable("covered switch");
}

FormulaRef WPEngine::wpAlloc(const Path &Lhs, const std::string &ClassName,
                             const std::vector<Path> &Args, SourceLoc Loc,
                             FormulaRef Phi) {
  const ClassDecl *C = S.findClass(ClassName);
  if (!C) {
    Diags.error(Loc, "unknown class '" + ClassName + "' in new");
    return Phi;
  }
  Path Nu = makeFresh(ClassName);
  // Program order: allocate Nu; run constructor body; Lhs := Nu.
  // Backward: first the final assignment, then the constructor body.
  Phi = substAssign(Lhs, Nu, std::move(Phi));
  const MethodDecl *Ctor = C->constructor();
  if (!Ctor)
    return Phi;
  if (Ctor->Params.size() != Args.size()) {
    Diags.error(Loc, "constructor argument count mismatch for '" + ClassName +
                         "'");
    return Phi;
  }
  Frame Inner;
  Inner.Class = C;
  Inner.Method = Ctor;
  Inner.Env["this"] = Nu;
  for (size_t I = 0; I != Args.size(); ++I)
    Inner.Env[Ctor->Params[I].Name] = Args[I];
  return wpStmtList(Ctor->Body, Inner, std::move(Phi));
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

FormulaRef WPEngine::wpMethodCall(const ClassDecl &C, const MethodDecl &M,
                                  FormulaRef Post) {
  Frame F;
  F.Class = &C;
  F.Method = &M;
  F.Env["this"] = Path::var("this", C.Name);
  for (const Param &P : M.Params)
    F.Env[P.Name] = Path::var(P.Name, P.Type);
  FormulaRef Pre = wpStmtList(M.Body, F, std::move(Post));
  return resolveFresh(std::move(Pre));
}

FormulaRef WPEngine::wpConstructorCall(const ClassDecl &C, FormulaRef Post) {
  // Model "ret = new C(params...)" with the constructor parameters as
  // binder variables.
  const MethodDecl *Ctor = C.constructor();
  std::vector<Path> Args;
  Frame F;
  F.Class = &C;
  F.Method = Ctor;
  if (Ctor)
    for (const Param &P : Ctor->Params) {
      Path V = Path::var(P.Name, P.Type);
      F.Env[P.Name] = V;
      Args.push_back(V);
    }
  Path Ret = Path::var("ret", C.Name);
  FormulaRef Pre = wpAlloc(Ret, C.Name, Args, SourceLoc(), std::move(Post));
  return resolveFresh(std::move(Pre));
}

FormulaRef WPEngine::translateMethodCondition(const ClassDecl &C,
                                              const MethodDecl &M,
                                              const Expr &E) {
  Frame F;
  F.Class = &C;
  F.Method = &M;
  F.Env["this"] = Path::var("this", C.Name);
  for (const Param &P : M.Params)
    F.Env[P.Name] = Path::var(P.Name, P.Type);
  return translateExpr(F, E);
}
