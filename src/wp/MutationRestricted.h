//===----------------------------------------------------------------------===//
///
/// \file
/// Classification of Easl specifications per Section 6 of the paper.
///
/// The paper proves that the derivation procedure terminates with a
/// finite, precise abstraction for "mutation-restricted" specifications
/// (a class containing GRP, IMP and AOP of Section 2.2, but not CMP —
/// for which the derivation nevertheless happens to converge). The
/// supplied paper text truncates before the full definition; we
/// reconstruct it from the surrounding text as the conjunction of:
///
///  1. alias-based: every requires condition is a conjunction of path
///     equalities (Section 6 terminology, given explicitly);
///  2. acyclic type graph: the field-type graph has finitely many paths
///     (||TG|| finite, given explicitly as the relevant measure);
///  3. restricted mutation: every field assignment either initializes a
///     field of "this" inside a constructor, or installs a freshly
///     allocated object (a version bump). CMP's "defVer = set.ver" in
///     remove() violates this, matching the paper's remark that CMP is
///     not mutation-restricted.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_WP_MUTATIONRESTRICTED_H
#define CANVAS_WP_MUTATIONRESTRICTED_H

#include "easl/AST.h"

#include <string>
#include <vector>

namespace canvas {
namespace wp {

/// The verdicts of the Section 6 classifier, with human-readable reasons
/// for every failed condition.
struct SpecClassification {
  bool AliasBased = true;
  bool TypeGraphAcyclic = true;
  bool RestrictedMutation = true;
  /// Strictly stronger than RestrictedMutation: every field is assigned
  /// only in its own class's constructor.
  bool MutationFree = true;

  bool mutationRestricted() const {
    return AliasBased && TypeGraphAcyclic && RestrictedMutation;
  }

  std::vector<std::string> Reasons;

  std::string str() const;
};

/// Classifies \p S per the (reconstructed) Section 6 definitions.
SpecClassification classifySpec(const easl::Spec &S);

} // namespace wp
} // namespace canvas

#endif // CANVAS_WP_MUTATIONRESTRICTED_H
