//===----------------------------------------------------------------------===//
///
/// \file
/// The output of the staged abstraction-derivation process of Section 4:
/// instrumentation-predicate families (Fig. 4) and component-method
/// abstractions (Fig. 5), derived automatically from an Easl spec by
/// iterated weakest-precondition computation.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_WP_ABSTRACTION_H
#define CANVAS_WP_ABSTRACTION_H

#include "easl/AST.h"
#include "logic/Formula.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace canvas {
namespace wp {

/// A family of instrumentation predicates (Sec. 4.1 "Predicate
/// Families"): a conjunction of path equality/disequality literals over
/// canonical typed free variables "$p0", "$p1", ... For a given client it
/// is instantiated once per tuple of client variables of matching types.
///
/// Example (CMP "mutx"): VarTypes = {Iterator, Iterator},
/// Body = ($p0 != $p1 && $p0.set == $p1.set).
struct PredicateFamily {
  std::vector<std::string> VarTypes;
  Conjunction Body;
  /// Canonical identity: type signature plus normalized body rendering.
  std::string Key;
  /// Auto-assigned display name ("P0", "P1", ...).
  std::string DisplayName;

  unsigned arity() const { return VarTypes.size(); }
  /// Canonical free-variable name of slot \p I.
  static std::string slotName(unsigned I) { return "$p" + std::to_string(I); }
  std::string str() const;
};

/// A reference to a predicate family applied to named variables. The
/// variable namespace depends on context: in update rules it is the
/// method's binders ("this", parameter names, "ret") plus universally
/// quantified slots ("$q0", ...); after client instantiation it is client
/// variable names.
struct PredApp {
  int Family = -1;
  std::vector<std::string> Args;

  std::string str(const std::vector<PredicateFamily> &Families) const;

  friend bool operator==(const PredApp &A, const PredApp &B) {
    return A.Family == B.Family && A.Args == B.Args;
  }
};

/// One row of a derived method abstraction (Fig. 5): how a call updates
/// one shape of target predicate instance.
///
/// The target is Family applied to a tuple whose slot I is either the
/// method result ("ret") or the universally quantified variable "$qI"
/// (ranging over all client variables of the slot type that are not
/// assigned by the call). The new value is ConstantTrue || OR(Sources),
/// all sources evaluated in the pre-call state.
struct UpdateRule {
  int Family = -1;
  /// Per target slot: true when the slot is bound to "ret".
  std::vector<bool> RetSlots;
  bool ConstantTrue = false;
  std::vector<PredApp> Sources;
  /// True when the rule is "p := p" (value unaffected); such rules are
  /// kept out of the printed table, mirroring the paper's optimization.
  bool IsIdentity = false;

  /// The target as a PredApp over "$qI"/"ret" names.
  PredApp target() const;
  std::string str(const std::vector<PredicateFamily> &Families) const;
};

/// The derived abstraction of one component method (or of a constructor,
/// exposed to clients as the pseudo-method "new").
struct MethodAbstraction {
  std::string ClassName;
  std::string MethodName; ///< "new" for the constructor pseudo-method.
  bool HasThis = true;    ///< False for "new".
  bool ReturnsValue = false;
  std::string ReturnType; ///< Valid when ReturnsValue.
  /// True when the returned reference is provably a freshly allocated
  /// object (WP of "ret == q" is false for a fresh symbolic q). The
  /// first-order engine then models the call as an allocation.
  bool ReturnsFresh = false;
  /// Binder parameter names and types, excluding this/ret.
  std::vector<std::pair<std::string, std::string>> Params;
  /// Predicates (over binder names) that must be FALSE on entry; each
  /// derives from one disjunct of the negation of a requires clause.
  /// Source location of the requires clause is kept for reporting.
  std::vector<std::pair<PredApp, SourceLoc>> RequiresFalse;
  std::vector<UpdateRule> Rules;

  std::string str(const std::vector<PredicateFamily> &Families) const;
};

/// The complete derived component abstraction: the analogue of Fig. 4
/// (Families) plus Fig. 5 (Methods).
struct DerivedAbstraction {
  std::vector<PredicateFamily> Families;
  std::vector<MethodAbstraction> Methods;
  /// False when the derivation hit the family cap before reaching a
  /// fixpoint (possible in general, Sec. 4.5; never for the built-ins).
  bool Converged = true;
  /// Number of WP computations performed (reported by the derivation
  /// benchmarks).
  unsigned NumWPComputations = 0;

  const MethodAbstraction *findMethod(const std::string &ClassName,
                                      const std::string &MethodName) const;
  /// Index of the family with the given canonical key, or -1.
  int findFamily(const std::string &Key) const;
  /// Renders the Fig. 4 + Fig. 5 analogue.
  std::string str() const;
};

/// Options controlling the derivation; the defaults reproduce the paper.
struct DerivationOptions {
  /// Hard cap on discovered families; hitting it clears Converged.
  unsigned MaxFamilies = 64;
  /// Use congruence-closure simplification of WP disjuncts (removing
  /// literals entailed by the rest). Disabling this is the ablation of
  /// DESIGN.md decision 1.
  bool SimplifyWithCC = true;
  /// Simplify WP results under the method's requires precondition
  /// (sound: executions violating it are reported separately).
  bool AssumePrecondition = true;
};

/// Runs the staged derivation of Sections 4.1/4.2 on \p S. Diagnostics
/// (e.g. unsupported constructs) are reported to \p Diags.
DerivedAbstraction deriveAbstraction(const easl::Spec &S,
                                     const DerivationOptions &Opts,
                                     DiagnosticEngine &Diags);

/// Convenience overload with default options.
DerivedAbstraction deriveAbstraction(const easl::Spec &S,
                                     DiagnosticEngine &Diags);

/// Result of instantiating a predicate-family body with concrete
/// variable names.
enum class InstResult { False, True, Conj };

/// Substitutes \p Args for the family's canonical variables and
/// normalizes. Returns False/True when the instance folds to a constant
/// (e.g. mutx(i, i) = 0, same(v, v) = 1), otherwise fills \p Out with
/// the canonical conjunction identifying the instance.
InstResult instantiateFamily(const PredicateFamily &F,
                             const std::vector<std::string> &Args,
                             const std::vector<std::string> &ArgTypes,
                             Conjunction &Out);

/// Renames root variable \p From to \p To (with type \p ToType) in \p C
/// and renormalizes. Used for client copy statements "x = y".
InstResult renameRootInConjunction(const Conjunction &C,
                                   const std::string &From,
                                   const std::string &To,
                                   const std::string &ToType,
                                   Conjunction &Out);

} // namespace wp
} // namespace canvas

#endif // CANVAS_WP_ABSTRACTION_H
