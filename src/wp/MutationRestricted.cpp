#include "wp/MutationRestricted.h"

#include "support/Casting.h"

#include <functional>
#include <map>

using namespace canvas;
using namespace canvas::wp;
using namespace canvas::easl;

namespace {

/// True when \p E is a conjunction of non-negated path equalities.
bool isAliasCondition(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::Compare:
    return !cast<CompareExpr>(&E)->Negated;
  case Expr::Kind::And: {
    for (const ExprPtr &Op : cast<AndExpr>(&E)->Operands)
      if (!isAliasCondition(*Op))
        return false;
    return true;
  }
  case Expr::Kind::BoolConst:
    return cast<BoolConstExpr>(&E)->Value;
  case Expr::Kind::Or:
  case Expr::Kind::Not:
    return false;
  }
  return false;
}

/// DFS cycle detection over the field-type graph.
bool typeGraphAcyclic(const Spec &S) {
  enum class Mark { White, Gray, Black };
  std::map<std::string, Mark> Marks;
  std::function<bool(const ClassDecl &)> Visit = [&](const ClassDecl &C) {
    Mark &M = Marks[C.Name];
    if (M == Mark::Gray)
      return false;
    if (M == Mark::Black)
      return true;
    M = Mark::Gray;
    for (const FieldDecl &F : C.Fields)
      if (const ClassDecl *Target = S.findClass(F.Type))
        if (!Visit(*Target))
          return false;
    Marks[C.Name] = Mark::Black;
    return true;
  };
  for (const ClassDecl &C : S.Classes)
    if (!Visit(C))
      return false;
  return true;
}

class Classifier {
public:
  explicit Classifier(const Spec &S) : S(S) {}

  SpecClassification run() {
    if (!typeGraphAcyclic(S)) {
      R.TypeGraphAcyclic = false;
      R.Reasons.push_back("the field-type graph has a cycle, so ||TG|| is "
                          "infinite");
    }
    for (const ClassDecl &C : S.Classes)
      for (const MethodDecl &M : C.Methods)
        visitMethod(C, M);
    return R;
  }

private:
  void visitMethod(const ClassDecl &C, const MethodDecl &M) {
    for (const StmtPtr &St : M.Body)
      visitStmt(C, M, *St);
  }

  void visitStmt(const ClassDecl &C, const MethodDecl &M, const Stmt &St) {
    switch (St.getKind()) {
    case Stmt::Kind::Requires: {
      const auto *Req = cast<RequiresStmt>(&St);
      if (!isAliasCondition(*Req->Cond)) {
        R.AliasBased = false;
        R.Reasons.push_back(C.Name + "::" + M.Name +
                            ": requires condition is not a conjunction of "
                            "alias equalities");
      }
      return;
    }
    case Stmt::Kind::Assign:
      visitAssign(C, M, *cast<AssignStmt>(&St));
      return;
    case Stmt::Kind::Return:
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&St);
      for (const StmtPtr &Sub : I->Then)
        visitStmt(C, M, *Sub);
      for (const StmtPtr &Sub : I->Else)
        visitStmt(C, M, *Sub);
      return;
    }
    }
  }

  void visitAssign(const ClassDecl &C, const MethodDecl &M,
                   const AssignStmt &A) {
    // Identify a field assignment: either an explicit multi-component
    // path, or a single component that names a field of C (implicit
    // this).
    bool IsFieldTarget = A.Lhs.Components.size() > 1 ||
                         C.findField(A.Lhs.Components.front()) != nullptr;
    if (!IsFieldTarget)
      return;

    bool TargetsThis =
        A.Lhs.Components.size() == 1 ||
        (A.Lhs.Components.size() == 2 && A.Lhs.Components.front() == "this");
    bool InOwnCtor = M.IsConstructor && TargetsThis;

    if (!InOwnCtor) {
      R.MutationFree = false;
      R.Reasons.push_back(C.Name + "::" + M.Name + ": assignment to '" +
                          A.Lhs.str() +
                          "' outside the owning constructor (field is "
                          "mutable)");
    }
    if (!InOwnCtor && !A.Rhs.isNew()) {
      R.RestrictedMutation = false;
      R.Reasons.push_back(C.Name + "::" + M.Name + ": '" + A.Lhs.str() +
                          " = " + A.Rhs.str() +
                          "' mutates a field with a non-fresh value");
    }
  }

  const Spec &S;
  SpecClassification R;
};

} // namespace

std::string SpecClassification::str() const {
  std::string Out;
  Out += std::string("alias-based:          ") + (AliasBased ? "yes" : "no") +
         "\n";
  Out += std::string("acyclic type graph:   ") +
         (TypeGraphAcyclic ? "yes" : "no") + "\n";
  Out += std::string("restricted mutation:  ") +
         (RestrictedMutation ? "yes" : "no") + "\n";
  Out += std::string("mutation-free:        ") + (MutationFree ? "yes" : "no") +
         "\n";
  Out += std::string("=> mutation-restricted: ") +
         (mutationRestricted() ? "yes" : "no") + "\n";
  for (const std::string &Reason : Reasons)
    Out += "   - " + Reason + "\n";
  return Out;
}

SpecClassification wp::classifySpec(const Spec &S) {
  return Classifier(S).run();
}
