//===----------------------------------------------------------------------===//
///
/// \file
/// Component liveness and dead-store elimination (Stage-0 pass 2): a
/// backward bit-vector analysis over the monotone framework. A
/// component local is live at a point when some path from it reaches a
/// real use — a component-call receiver or argument, a constructor or
/// client-call argument, or a copy whose target is itself live (copy
/// chains are resolved flow-sensitively in the transfer function).
///
/// Dead-store elimination rewrites copies and havocs of dead targets to
/// no-ops and computes the *retained* variable set: the component
/// locals that still matter to any certification verdict. Dropping the
/// others from the boolean-program instantiation shrinks B, the
/// dominant cost term of the O(E·B²) SCMP engines, without changing any
/// verdict (see DESIGN.md, "Stage 0 pre-analysis", for the argument).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_DATAFLOW_LIVENESS_H
#define CANVAS_DATAFLOW_LIVENESS_H

#include "dataflow/Dataflow.h"

#include <optional>
#include <string>
#include <vector>

namespace canvas {
namespace dataflow {

struct LivenessResult {
  CompVarMap Vars;
  /// Live set at each node (the program point the node represents), or
  /// nullopt for nodes that cannot reach the exit.
  std::vector<std::optional<BitVector>> LiveAt;
  unsigned NodeVisits = 0;

  explicit LivenessResult(const cj::CFGMethod &M) : Vars(M) {}
  bool live(int Node, const std::string &Var) const {
    int I = Vars.index(Var);
    return I >= 0 && LiveAt[Node] && (*LiveAt[Node])[I];
  }
};

/// Runs backward liveness on \p M. \p RetLiveAtExit keeps "$ret" (and
/// anything copied into it) live at the method exit; the intraprocedural
/// certifier never consults post-exit facts, so Stage 0 runs with it
/// off.
LivenessResult analyzeLiveness(const cj::CFGMethod &M, const CFGInfo &Info,
                               bool RetLiveAtExit,
                               support::CancelToken *Cancel = nullptr);

struct DeadStoreStats {
  unsigned StoresRemoved = 0;
  unsigned VarsDropped = 0;
};

/// Rewrites dead copies/havocs in \p M to no-ops and fills \p Retained
/// with the component variables (in declaration order) still used by
/// any surviving action. Component calls and allocations with dead
/// results keep their actions (their requires checks and effects on
/// other objects must survive); their result variables are dropped from
/// \p Retained when nothing else uses them.
///
/// \p KeepCallResults retains every call/allocation result variable even
/// when unused — required for abstractions whose update rules read
/// predicates over "ret" in the pre-call state (none of the built-in
/// specs do; see PreAnalysis).
DeadStoreStats eliminateDeadStores(cj::CFGMethod &M, const LivenessResult &L,
                                   bool KeepCallResults,
                                   std::vector<std::string> &Retained);

} // namespace dataflow
} // namespace canvas

#endif // CANVAS_DATAFLOW_LIVENESS_H
