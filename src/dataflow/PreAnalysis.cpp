#include "dataflow/PreAnalysis.h"

#include "dataflow/PointsTo.h"

#include <map>

using namespace canvas;
using namespace canvas::dataflow;

unsigned PreAnalysisResult::totalEdgesPruned() const {
  unsigned N = 0;
  for (const MethodPlan &P : Plans)
    N += P.EdgesPruned;
  return N;
}

unsigned PreAnalysisResult::totalDeadStores() const {
  unsigned N = 0;
  for (const MethodPlan &P : Plans)
    N += P.DeadStoresRemoved;
  return N;
}

unsigned PreAnalysisResult::totalVarsDropped() const {
  unsigned N = 0;
  for (const MethodPlan &P : Plans)
    N += P.VarsDropped;
  return N;
}

unsigned PreAnalysisResult::multiSliceMethods() const {
  unsigned N = 0;
  for (const MethodPlan &P : Plans)
    N += P.multiSlice();
  return N;
}

bool dataflow::abstractionReadsRetSources(const wp::DerivedAbstraction &Abs) {
  for (const wp::MethodAbstraction &M : Abs.Methods)
    for (const wp::UpdateRule &R : M.Rules)
      for (const wp::PredApp &Src : R.Sources)
        for (const std::string &Arg : Src.Args)
          if (Arg == "ret")
            return true;
  return false;
}

namespace {

/// Re-synthesizes the requires obligations of a pruned call edge with
/// the exact text the unpruned boolean program would have produced
/// (bp::buildBooleanProgram keeps the pre-instantiation text for every
/// obligation; only the "(unknown operand)" suffix depends on the
/// operand binding).
void synthesizeDroppedChecks(const cj::Action &A, int OrigEdge,
                             const cj::CFGMethod &M,
                             const wp::DerivedAbstraction &Abs,
                             std::vector<DroppedCheck> &Out) {
  if (A.K != cj::Action::Kind::CompCall &&
      A.K != cj::Action::Kind::AllocComp)
    return;

  const wp::MethodAbstraction *MA = nullptr;
  if (A.K == cj::Action::Kind::AllocComp) {
    MA = Abs.findMethod(A.Callee, "new");
  } else {
    for (const auto &[Name, Type] : M.CompVars)
      if (Name == A.Recv) {
        MA = Abs.findMethod(Type, A.Callee);
        break;
      }
  }
  if (!MA)
    return;

  std::map<std::string, std::string> Binding;
  if (MA->HasThis)
    Binding["this"] = A.Recv;
  for (size_t I = 0; I != MA->Params.size() && I != A.Args.size(); ++I)
    Binding[MA->Params[I].first] = A.Args[I];
  if (!A.Lhs.empty())
    Binding["ret"] = A.Lhs;

  for (const auto &[App, ReqLoc] : MA->RequiresFalse) {
    (void)ReqLoc;
    DroppedCheck C;
    C.OrigEdge = OrigEdge;
    C.Loc = A.Loc;
    C.What = A.str() + " requires !" + App.str(Abs.Families);
    for (const std::string &Arg : App.Args) {
      auto It = Binding.find(Arg);
      if (It == Binding.end() || It->second.empty()) {
        C.What += " (unknown operand)";
        break;
      }
    }
    Out.push_back(std::move(C));
  }
}

} // namespace

MethodPlan dataflow::preAnalyzeMethod(const cj::CFGMethod &M,
                                      const wp::DerivedAbstraction &Abs,
                                      const PreAnalysisOptions &Opts,
                                      std::vector<UninitUse> *Findings) {
  MethodPlan Plan;
  Plan.Source = &M;
  Plan.CFG = M;

  if (Opts.PruneUnreachable) {
    PruneStats PS = pruneUnreachableEdges(Plan.CFG, Plan.OrigEdgeIndex);
    Plan.EdgesPruned = PS.EdgesRemoved;
    Plan.NodesUnreachable = PS.NodesUnreachable;
    if (PS.EdgesRemoved) {
      // Synthesize the obligations of the edges we dropped.
      std::vector<bool> Kept(M.Edges.size(), false);
      for (int E : Plan.OrigEdgeIndex)
        Kept[E] = true;
      for (size_t E = 0; E != M.Edges.size(); ++E)
        if (!Kept[E])
          synthesizeDroppedChecks(M.Edges[E].Act, static_cast<int>(E), M,
                                  Abs, Plan.DroppedChecks);
    }
  } else {
    Plan.OrigEdgeIndex.resize(M.Edges.size());
    for (size_t E = 0; E != M.Edges.size(); ++E)
      Plan.OrigEdgeIndex[E] = static_cast<int>(E);
  }

  CFGInfo Info(Plan.CFG);

  bool HasUninitUses = false;
  if (Opts.Lint) {
    DefiniteAssignmentResult DA =
        analyzeDefiniteAssignment(Plan.CFG, Info, &Abs, Opts.Cancel);
    HasUninitUses = !DA.clean();
    if (Findings)
      for (UninitUse &U : DA.Uses)
        Findings->push_back(std::move(U));
  }

  bool RetSources = abstractionReadsRetSources(Abs);
  if (Opts.EliminateDeadStores) {
    LivenessResult Live = analyzeLiveness(Plan.CFG, Info, false, Opts.Cancel);
    DeadStoreStats DS =
        eliminateDeadStores(Plan.CFG, Live, RetSources, Plan.Retained);
    Plan.DeadStoresRemoved = DS.StoresRemoved;
    Plan.VarsDropped = DS.VarsDropped;
  } else {
    for (const auto &[Name, Type] : Plan.CFG.CompVars) {
      (void)Type;
      Plan.Retained.push_back(Name);
    }
  }

  if (Opts.Slice) {
    const MethodAliasInfo *Alias =
        Opts.PointsTo ? Opts.PointsTo->aliasFor(M.name()) : nullptr;
    SliceResult SR = computeSlices(Plan.CFG, Plan.Retained, HasUninitUses,
                                   RetSources, Alias);
    Plan.Slices = std::move(SR.Slices);
    Plan.ForcedSingleReason = SR.ForcedSingleReason;
  } else if (!Plan.Retained.empty()) {
    Plan.Slices.assign(1, Plan.Retained);
  }
  return Plan;
}

PreAnalysisResult dataflow::preAnalyze(const cj::ClientCFG &CFG,
                                       const wp::DerivedAbstraction &Abs,
                                       const PreAnalysisOptions &Opts) {
  PreAnalysisResult R;
  R.Plans.reserve(CFG.Methods.size());
  for (const cj::CFGMethod &M : CFG.Methods) {
    size_t Before = R.Findings.size();
    R.Plans.push_back(preAnalyzeMethod(M, Abs, Opts, &R.Findings));
    for (size_t I = Before; I != R.Findings.size(); ++I)
      R.FindingMethods.push_back(M.name());
  }
  return R;
}
