//===----------------------------------------------------------------------===//
///
/// \file
/// Andersen constraint generation, the round-robin solver, the
/// single-pass closure validator used by the certificate checker, and
/// the instance-relatedness quotient. Generation mirrors the typing
/// discipline of client/CFG.cpp exactly (component types resolve
/// against the spec, client types against the program, everything else
/// is opaque), but walks the AST rather than the lowered CFG: lowering
/// erases heap structure (field stores become havoc), which is
/// precisely the information this analysis exists to keep.
///
//===----------------------------------------------------------------------===//

#include "dataflow/PointsTo.h"

#include <algorithm>
#include <cassert>

using namespace canvas;
using namespace canvas::dataflow;

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

std::string PTObject::str() const {
  switch (K) {
  case Kind::Unknown:
    return "<unknown>";
  case Kind::CompAlloc:
    return "alloc " + Type + " @" + Method + ":" + std::to_string(Loc.Line);
  case Kind::ClientAlloc:
    return "client " + Type + " @" + Method + ":" + std::to_string(Loc.Line);
  case Kind::CompDerived:
    return "result " + Type + " @" + Method + ":" + std::to_string(Loc.Line);
  case Kind::MainContext:
    return "main-context " + Type;
  }
  return "?";
}

int PTSystem::nodeOf(const std::string &Method, const std::string &Var) const {
  auto It = MethodVars.find(Method);
  if (It == MethodVars.end())
    return -1;
  for (const auto &[Name, Node] : It->second)
    if (Name == Var)
      return Node;
  return -1;
}

std::set<std::string> PTSystem::reachableFromMain() const {
  std::set<std::string> Out;
  if (!HasMain)
    return Out;
  std::vector<std::string> Work{MainName};
  Out.insert(MainName);
  while (!Work.empty()) {
    std::string M = Work.back();
    Work.pop_back();
    auto It = CallGraph.find(M);
    if (It == CallGraph.end())
      continue;
    for (const std::string &Callee : It->second)
      if (Out.insert(Callee).second)
        Work.push_back(Callee);
  }
  return Out;
}

const std::set<int> &PointsToSolution::pts(int Node) const {
  static const std::set<int> Empty;
  if (Node < 0 || static_cast<size_t>(Node) >= VarPts.size())
    return Empty;
  return VarPts[Node];
}

const std::set<int> &PointsToSolution::fieldPts(int Obj,
                                                const std::string &Field) const {
  static const std::set<int> Empty;
  auto It = FieldPts.find({Obj, fieldKey(Obj, Field)});
  return It == FieldPts.end() ? Empty : It->second;
}

bool MethodAliasInfo::related(const std::string &A,
                              const std::string &B) const {
  for (const std::vector<std::string> &G : Groups) {
    bool HasA = std::find(G.begin(), G.end(), A) != G.end();
    bool HasB = std::find(G.begin(), G.end(), B) != G.end();
    if (HasA && HasB)
      return true;
    if (HasA || HasB)
      return false; // Groups partition: no need to scan further.
  }
  return false;
}

const MethodAliasInfo *
PointsToResult::aliasFor(const std::string &Method) const {
  auto It = Alias.find(Method);
  return It == Alias.end() ? nullptr : &It->second;
}

namespace {

class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    for (size_t I = 0; I != N; ++I)
      Parent[I] = static_cast<int>(I);
  }
  int find(int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(int A, int B) {
    A = find(A);
    B = find(B);
    if (A != B)
      Parent[std::max(A, B)] = std::min(A, B);
  }

private:
  std::vector<int> Parent;
};

//===----------------------------------------------------------------------===//
// Constraint generation
//===----------------------------------------------------------------------===//

class Generator {
public:
  Generator(const cj::Program &P, const easl::Spec &Spec)
      : Prog(P), Spec(Spec) {}

  PTSystem run() {
    // The Unknown object and the opaque-world node, self-seeded so the
    // world's summary field always contains at least the world itself.
    Sys.Objects.push_back(PTObject{});
    UNode = rawNode("", "$unknown", "", /*Comp=*/true);
    addr(UNode, 0);
    store(UNode, "*", UNode);

    // Phase 1: intern every named variable of every method, so client
    // calls can bind arguments to not-yet-walked callees and the
    // certificate checker can resolve any (method, var) pair.
    for (const cj::CClass &C : Prog.Classes)
      for (const cj::CMethod &M : C.Methods)
        internMethodVars(C, M);

    // Phase 2: walk every method body.
    for (const cj::CClass &C : Prog.Classes)
      for (const cj::CMethod &M : C.Methods) {
        enterMethod(C, M);
        walk(M.Body);
      }

    // Entry seeding: main's receiver is a synthesized instance of its
    // class; main's parameters come from the driver, i.e. the opaque
    // world. Every other method is only ever entered through a
    // statically resolved client call, whose bindings the constraints
    // already carry (the closed-world assumption — see DESIGN.md).
    if (const cj::CMethod *Main = Prog.mainMethod()) {
      const cj::CClass *MC = Prog.classOfMethod(Main);
      Sys.HasMain = true;
      Sys.MainName = MC->Name + "::" + Main->Name;
      int Ctx = addObject(PTObject::Kind::MainContext, Sys.MainName, MC->Name,
                          Main->Loc);
      addr(node(Sys.MainName, "this"), Ctx);
      for (const cj::CParam &P : Main->Params)
        addr(node(Sys.MainName, P.Name), 0);
    }
    return std::move(Sys);
  }

private:
  bool isCompType(const std::string &T) const {
    return Spec.findClass(T) != nullptr;
  }
  bool isClientType(const std::string &T) const {
    return Prog.findClass(T) != nullptr;
  }

  /// Creates a node unconditionally. "this" is the client instance
  /// itself, never a component reference, even when a client class
  /// shadows a spec class name.
  int rawNode(const std::string &Method, const std::string &Name,
              const std::string &Type, bool Comp) {
    int Id = static_cast<int>(Sys.Nodes.size());
    Sys.Nodes.emplace_back(Method, Name);
    Sys.NodeIsComp.push_back(Comp);
    NodeTypes.push_back(Type);
    NodeIds[{Method, Name}] = Id;
    return Id;
  }

  int node(const std::string &Method, const std::string &Name) const {
    auto It = NodeIds.find({Method, Name});
    return It == NodeIds.end() ? -1 : It->second;
  }

  int temp(const std::string &Type) {
    return rawNode(CurName, "$pt" + std::to_string(TempCount++), Type,
                   Type.empty() || isCompType(Type));
  }

  /// A fresh node holding whatever the opaque world holds.
  int unknownTemp() {
    int T = temp("");
    load(T, UNode, "*");
    return T;
  }

  /// Leaks \p N to the opaque world.
  void escape(int N) {
    if (N >= 0)
      store(UNode, "*", N);
  }

  int addObject(PTObject::Kind K, const std::string &Method,
                const std::string &Type, SourceLoc Loc) {
    Sys.Objects.push_back(PTObject{K, Method, Type, Loc});
    return static_cast<int>(Sys.Objects.size()) - 1;
  }

  void addr(int Dst, int Obj) {
    if (Dst >= 0)
      Sys.Constraints.push_back(
          {PTSystem::Constraint::Kind::AddrOf, Dst, Obj, ""});
  }
  void copy(int Dst, int Src) {
    if (Dst >= 0 && Src >= 0 && Dst != Src)
      Sys.Constraints.push_back(
          {PTSystem::Constraint::Kind::Copy, Dst, Src, ""});
  }
  void load(int Dst, int Base, const std::string &F) {
    if (Dst >= 0 && Base >= 0)
      Sys.Constraints.push_back(
          {PTSystem::Constraint::Kind::Load, Dst, Base, F});
  }
  void store(int Base, const std::string &F, int Src) {
    if (Base >= 0 && Src >= 0)
      Sys.Constraints.push_back(
          {PTSystem::Constraint::Kind::Store, Base, Src, F});
  }

  /// Records that one action may relate the component instances
  /// denoted by \p Nodes (only component-typed or opaque nodes count).
  void relate(std::vector<int> Nodes) {
    std::vector<int> Rel;
    for (int N : Nodes)
      if (N >= 0 && Sys.NodeIsComp[N] &&
          std::find(Rel.begin(), Rel.end(), N) == Rel.end())
        Rel.push_back(N);
    if (Rel.size() > 1)
      Sys.Relations.push_back(std::move(Rel));
  }

  /// Mirrors client/CFG.cpp collectVarTypes: parameters, declarations
  /// in syntactic order (first declaration wins on duplicates), then
  /// "$ret" — so MethodVars lines up with CFGMethod::CompVars.
  void internMethodVars(const cj::CClass &C, const cj::CMethod &M) {
    enterMethod(C, M);
    rawNode(CurName, "this", C.Name, /*Comp=*/false);
    auto Declare = [&](const std::string &Name, const std::string &Type) {
      if (!VarTypes.emplace(Name, Type).second)
        return; // Duplicate declaration: first one wins, as in lowering.
      int Id = rawNode(CurName, Name, Type, isCompType(Type));
      if (Sys.NodeIsComp[Id])
        Sys.MethodVars[CurName].emplace_back(Name, Id);
    };
    for (const cj::CParam &P : M.Params)
      Declare(P.Name, P.Type);
    collectDecls(M.Body, Declare);
    if (M.ReturnType != "void")
      Declare("$ret", M.ReturnType);
    MethodEnv[CurName] = VarTypes;
  }

  template <typename Fn>
  void collectDecls(const std::vector<cj::CStmtPtr> &Body, Fn &&Declare) {
    for (const cj::CStmtPtr &S : Body) {
      switch (S->getKind()) {
      case cj::CStmt::Kind::Decl: {
        const auto *D = cast<cj::DeclStmt>(S.get());
        Declare(D->Name, D->Type);
        break;
      }
      case cj::CStmt::Kind::If: {
        const auto *I = cast<cj::IfStmt>(S.get());
        collectDecls(I->Then, Declare);
        collectDecls(I->Else, Declare);
        break;
      }
      case cj::CStmt::Kind::While:
        collectDecls(cast<cj::WhileStmt>(S.get())->Body, Declare);
        break;
      case cj::CStmt::Kind::Block:
        collectDecls(cast<cj::BlockStmt>(S.get())->Body, Declare);
        break;
      default:
        break;
      }
    }
  }

  void enterMethod(const cj::CClass &C, const cj::CMethod &M) {
    CurClass = &C;
    CurName = C.Name + "::" + M.Name;
    auto It = MethodEnv.find(CurName);
    if (It != MethodEnv.end()) {
      VarTypes = It->second;
      return;
    }
    VarTypes.clear();
    VarTypes.emplace("this", C.Name);
  }

  std::string typeOfNode(int N) const {
    return N < 0 ? std::string() : NodeTypes[N];
  }

  //===--------------------------------------------------------------------===//
  // Expression evaluation: returns the node denoting the value, -1 when
  // the value can carry no tracked reference (null, void).
  //===--------------------------------------------------------------------===//

  int evalExpr(const cj::CExpr &E) {
    switch (E.getKind()) {
    case cj::CExpr::Kind::Null:
      return -1;
    case cj::CExpr::Kind::Path:
      return evalPath(cast<cj::PathRefExpr>(&E)->P);
    case cj::CExpr::Kind::New:
      return evalNew(*cast<cj::NewExpr>(&E));
    case cj::CExpr::Kind::Call:
      return evalCall(*cast<cj::CallExpr>(&E));
    }
    return -1;
  }

  int evalPath(const cj::PathE &P) {
    if (P.Components.empty())
      return -1;
    int Base;
    if (VarTypes.count(P.Components[0]))
      Base = node(CurName, P.Components[0]);
    else
      Base = unknownTemp(); // Undeclared: lowering diagnosed it already.
    for (size_t I = 1; I < P.Components.size(); ++I) {
      const std::string &F = P.Components[I];
      const cj::CClass *C = Prog.findClass(typeOfNode(Base));
      const cj::CField *Fld = C ? C->findField(F) : nullptr;
      if (Fld) {
        int T = temp(Fld->Type);
        load(T, Base, F);
        Base = T;
      } else {
        // Opaque or component-internal segment: the rest of the path
        // reads whatever the world holds, and traversing it publishes
        // nothing (reads don't escape).
        int T = temp("");
        load(T, Base, F);
        Base = T;
      }
    }
    return Base;
  }

  int evalNew(const cj::NewExpr &N) {
    std::vector<int> ArgNodes;
    for (const cj::CExprPtr &A : N.Args)
      ArgNodes.push_back(evalExpr(*A));
    if (isCompType(N.Type)) {
      int Obj = addObject(PTObject::Kind::CompAlloc, CurName, N.Type, N.Loc);
      int T = temp(N.Type);
      addr(T, Obj);
      // Constructor operands and the new instance are co-related (the
      // AllocComp action names them all).
      ArgNodes.push_back(T);
      relate(ArgNodes);
      return T;
    }
    if (isClientType(N.Type)) {
      int Obj = addObject(PTObject::Kind::ClientAlloc, CurName, N.Type, N.Loc);
      int T = temp(N.Type);
      addr(T, Obj);
      // CJ client classes have no constructors; any arguments are
      // conservatively published to the world.
      for (int A : ArgNodes)
        escape(A);
      relate(ArgNodes);
      return T;
    }
    // Opaque allocation: an unknown-world value.
    for (int A : ArgNodes)
      escape(A);
    return unknownTemp();
  }

  int evalCall(const cj::CallExpr &Call) {
    cj::PathE Recv = Call.receiver();
    // Intra-class client call: m(args) or this.m(args).
    if (Recv.Components.empty() ||
        (Recv.isSingleVar() && Recv.Components[0] == "this"))
      return clientCall(*CurClass, node(CurName, "this"), Call);

    int RecvNode = evalPath(Recv);
    std::string RecvType = typeOfNode(RecvNode);
    if (isCompType(RecvType))
      return componentCall(RecvType, RecvNode, Call);
    if (const cj::CClass *C = Prog.findClass(RecvType))
      return clientCall(*C, RecvNode, Call);
    // Opaque receiver: mirrors lowering — such a receiver can hold
    // component references only via heap traffic, which the store/load
    // constraints through the Unknown object already track; the call
    // itself relates nothing.
    for (const cj::CExprPtr &A : Call.Args)
      evalExpr(*A); // Subexpression effects only.
    return unknownTemp();
  }

  int componentCall(const std::string &RecvType, int RecvNode,
                    const cj::CallExpr &Call) {
    std::vector<int> Ops{RecvNode};
    for (const cj::CExprPtr &A : Call.Args)
      Ops.push_back(evalExpr(*A));

    int Result = -1;
    const easl::ClassDecl *C = Spec.findClass(RecvType);
    const easl::MethodDecl *M = C ? C->findMethod(Call.methodName()) : nullptr;
    if (M && isCompType(M->ReturnType)) {
      // The component's internal heap is opaque: the result is a fresh
      // per-site abstract instance, related to the receiver and
      // arguments below (so a later retrieval through any related
      // variable stays within the group).
      int Obj = addObject(PTObject::Kind::CompDerived, CurName, M->ReturnType,
                          Call.Loc);
      Result = temp(M->ReturnType);
      addr(Result, Obj);
    } else if (!M) {
      // Unknown component method (diagnosed during lowering): treat the
      // result as opaque.
      Result = unknownTemp();
    }
    Ops.push_back(Result);
    relate(Ops);
    return Result;
  }

  int clientCall(const cj::CClass &Target, int RecvNode,
                 const cj::CallExpr &Call) {
    const cj::CMethod *M = Target.findMethod(Call.methodName());
    if (!M || M->Params.size() != Call.Args.size()) {
      // Lowering rejects these with a diagnostic; stay conservative.
      for (const cj::CExprPtr &A : Call.Args)
        escape(evalExpr(*A));
      return unknownTemp();
    }
    std::string Callee = Target.Name + "::" + M->Name;
    Sys.CallGraph[CurName].push_back(Callee);
    copy(node(Callee, "this"), RecvNode);
    for (size_t I = 0; I != Call.Args.size(); ++I)
      copy(node(Callee, M->Params[I].Name), evalExpr(*Call.Args[I]));
    if (M->ReturnType == "void")
      return -1;
    int T = temp(M->ReturnType);
    copy(T, node(Callee, "$ret"));
    // Deliberately no relation: a resolved client call is an identity
    // frame — whatever instances the callee relates, its own
    // constraints and relations already say so, and they flow back
    // here through the points-to sets.
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Statement walking
  //===--------------------------------------------------------------------===//

  void walk(const std::vector<cj::CStmtPtr> &Body) {
    for (const cj::CStmtPtr &S : Body)
      walkStmt(*S);
  }

  void walkStmt(const cj::CStmt &S) {
    switch (S.getKind()) {
    case cj::CStmt::Kind::Decl: {
      const auto *D = cast<cj::DeclStmt>(&S);
      if (D->Init)
        assignVar(D->Name, *D->Init);
      return;
    }
    case cj::CStmt::Kind::Assign: {
      const auto *A = cast<cj::AssignStmt>(&S);
      if (A->Lhs.isSingleVar())
        return assignVar(A->Lhs.Components[0], *A->Rhs);
      // Field store. Resolve the prefix, then store under the final
      // component (object 0 folds every field into "*").
      cj::PathE Prefix = A->Lhs;
      std::string F = Prefix.Components.back();
      Prefix.Components.pop_back();
      int Base = evalPath(Prefix);
      store(Base, F, evalExpr(*A->Rhs));
      return;
    }
    case cj::CStmt::Kind::Expr:
      evalExpr(*cast<cj::ExprStmt>(&S)->E);
      return;
    case cj::CStmt::Kind::Return: {
      const auto *R = cast<cj::ReturnStmt>(&S);
      if (!R->Value)
        return;
      int V = evalExpr(*R->Value);
      int Ret = node(CurName, "$ret");
      copy(Ret, V);
      if (Ret >= 0 && Sys.NodeIsComp[Ret])
        relate({Ret, V}); // The $ret := v copy action names both.
      return;
    }
    case cj::CStmt::Kind::If: {
      const auto *I = cast<cj::IfStmt>(&S);
      walk(I->Then);
      walk(I->Else);
      return;
    }
    case cj::CStmt::Kind::While:
      walk(cast<cj::WhileStmt>(&S)->Body);
      return;
    case cj::CStmt::Kind::Block:
      walk(cast<cj::BlockStmt>(&S)->Body);
      return;
    }
  }

  void assignVar(const std::string &Var, const cj::CExpr &Rhs) {
    int Lhs = node(CurName, Var);
    int R = evalExpr(Rhs);
    copy(Lhs, R);
    if (Lhs >= 0 && Sys.NodeIsComp[Lhs])
      relate({Lhs, R}); // Copy actions name both operands.
  }

  const cj::Program &Prog;
  const easl::Spec &Spec;
  PTSystem Sys;
  std::map<std::pair<std::string, std::string>, int> NodeIds;
  std::vector<std::string> NodeTypes;
  std::map<std::string, std::map<std::string, std::string>> MethodEnv;
  int UNode = -1;
  int TempCount = 0;

  const cj::CClass *CurClass = nullptr;
  std::string CurName;
  std::map<std::string, std::string> VarTypes;
};

bool includeInto(std::set<int> &Dst, const std::set<int> &Src) {
  bool Grew = false;
  for (int O : Src)
    Grew |= Dst.insert(O).second;
  return Grew;
}

} // namespace

PTSystem dataflow::generateConstraints(const cj::Program &P,
                                       const easl::Spec &Spec) {
  return Generator(P, Spec).run();
}

//===----------------------------------------------------------------------===//
// Solving and closure checking
//===----------------------------------------------------------------------===//

PointsToSolution dataflow::solveConstraints(const PTSystem &Sys,
                                            support::CancelToken *Cancel) {
  support::faultProbe("points-to");
  PointsToSolution Sol;
  Sol.VarPts.resize(Sys.Nodes.size());
  using CK = PTSystem::Constraint::Kind;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Sol.Iterations;
    for (const PTSystem::Constraint &C : Sys.Constraints) {
      if (Cancel)
        Cancel->tick();
      switch (C.K) {
      case CK::AddrOf:
        Changed |= Sol.VarPts[C.Dst].insert(C.Src).second;
        break;
      case CK::Copy:
        Changed |= includeInto(Sol.VarPts[C.Dst], Sol.VarPts[C.Src]);
        break;
      case CK::Load:
        for (int O : Sol.VarPts[C.Src]) {
          auto It = Sol.FieldPts.find({O, fieldKey(O, C.Field)});
          if (It != Sol.FieldPts.end())
            Changed |= includeInto(Sol.VarPts[C.Dst], It->second);
        }
        break;
      case CK::Store:
        for (int O : Sol.VarPts[C.Dst])
          Changed |= includeInto(Sol.FieldPts[{O, fieldKey(O, C.Field)}],
                                 Sol.VarPts[C.Src]);
        break;
      }
    }
  }
  return Sol;
}

bool dataflow::checkSolutionClosed(const PTSystem &Sys,
                                   const PointsToSolution &Sol,
                                   std::string &Why) {
  size_t N = Sys.Nodes.size(), O = Sys.Objects.size();
  if (Sol.VarPts.size() != N) {
    Why = "points-to solution has wrong node count";
    return false;
  }
  for (const std::set<int> &S : Sol.VarPts)
    for (int X : S)
      if (X < 0 || static_cast<size_t>(X) >= O) {
        Why = "points-to set references an unknown object";
        return false;
      }
  for (const auto &[Key, S] : Sol.FieldPts) {
    if (Key.first < 0 || static_cast<size_t>(Key.first) >= O) {
      Why = "field points-to entry on an unknown object";
      return false;
    }
    for (int X : S)
      if (X < 0 || static_cast<size_t>(X) >= O) {
        Why = "field points-to set references an unknown object";
        return false;
      }
  }

  auto Subset = [](const std::set<int> &A, const std::set<int> &B) {
    return std::includes(B.begin(), B.end(), A.begin(), A.end());
  };
  using CK = PTSystem::Constraint::Kind;
  for (const PTSystem::Constraint &C : Sys.Constraints) {
    switch (C.K) {
    case CK::AddrOf:
      if (!Sol.VarPts[C.Dst].count(C.Src)) {
        Why = "allocation site missing from its variable's points-to set";
        return false;
      }
      break;
    case CK::Copy:
      if (!Subset(Sol.VarPts[C.Src], Sol.VarPts[C.Dst])) {
        Why = "copy constraint not closed";
        return false;
      }
      break;
    case CK::Load:
      for (int Obj : Sol.VarPts[C.Src])
        if (!Subset(Sol.fieldPts(Obj, C.Field), Sol.VarPts[C.Dst])) {
          Why = "load constraint not closed";
          return false;
        }
      break;
    case CK::Store:
      for (int Obj : Sol.VarPts[C.Dst])
        if (!Subset(Sol.VarPts[C.Src], Sol.fieldPts(Obj, C.Field))) {
          Why = "store constraint not closed";
          return false;
        }
      break;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Relatedness quotient
//===----------------------------------------------------------------------===//

std::map<std::string, MethodAliasInfo>
dataflow::computeAliasGroups(const PTSystem &Sys, const PointsToSolution &Sol,
                             const std::set<std::string> &Reachable) {
  size_t N = Sys.Nodes.size();
  size_t O = Sys.Objects.size();
  UnionFind UF(N + O);

  // A variable may denote any instance born at any site it points to.
  for (size_t I = 0; I != N; ++I)
    if (Sys.NodeIsComp[I])
      for (int Obj : Sol.pts(static_cast<int>(I)))
        UF.merge(static_cast<int>(I), static_cast<int>(N) + Obj);

  // Instances leaked to the opaque world share the world's fate.
  for (int Obj : Sol.fieldPts(0, "*"))
    UF.merge(static_cast<int>(N), static_cast<int>(N) + Obj);

  // Every instance-relating action merges its operands.
  for (const std::vector<int> &Rel : Sys.Relations)
    for (size_t I = 1; I < Rel.size(); ++I)
      UF.merge(Rel[0], Rel[I]);

  std::map<std::string, MethodAliasInfo> Out;
  for (const std::string &M : Reachable) {
    auto It = Sys.MethodVars.find(M);
    MethodAliasInfo &Info = Out[M]; // Present even when the method has
                                    // no component variables.
    if (It == Sys.MethodVars.end())
      continue;
    std::map<int, size_t> RootToGroup;
    for (const auto &[Name, Node] : It->second) {
      int Root = UF.find(Node);
      auto [RIt, New] = RootToGroup.emplace(Root, Info.Groups.size());
      if (New)
        Info.Groups.emplace_back();
      Info.Groups[RIt->second].push_back(Name);
    }
  }
  return Out;
}

PointsToResult dataflow::analyzePointsTo(const cj::Program &P,
                                         const easl::Spec &Spec,
                                         support::CancelToken *Cancel) {
  PointsToResult R;
  R.Sys = generateConstraints(P, Spec);
  R.Sol = solveConstraints(R.Sys, Cancel);
  R.Reachable = R.Sys.reachableFromMain();
  R.Alias = computeAliasGroups(R.Sys, R.Sol, R.Reachable);
  R.Stats.Objects = static_cast<unsigned>(R.Sys.Objects.size());
  R.Stats.Nodes = static_cast<unsigned>(R.Sys.Nodes.size());
  R.Stats.Constraints = static_cast<unsigned>(R.Sys.Constraints.size());
  R.Stats.Iterations = R.Sol.Iterations;
  R.Stats.ReachableMethods = static_cast<unsigned>(R.Reachable.size());
  for (const cj::CClass &C : P.Classes)
    R.Stats.TotalMethods += static_cast<unsigned>(C.Methods.size());
  return R;
}
