//===----------------------------------------------------------------------===//
///
/// \file
/// Escape/uniqueness classification of component allocation sites,
/// derived from the whole-program points-to solution (PointsTo.h).
///
/// The uniqueness lattice, least-escaping first:
///
///   MethodLocal  ⊑  ArgEscaping  ⊑  HeapEscaping
///
///  - MethodLocal: every reference to instances born at the site stays
///    in locals of the allocating method — the instance group is fully
///    private, so the allocating method's slice partition alone governs
///    its conformance checks.
///  - ArgEscaping: references reach another method's locals (through a
///    call binding or a return value) but never rest in the heap; the
///    instance is shared along the call tree only.
///  - HeapEscaping: a reference is stored into some object's field or
///    leaks to the opaque world; any method that can reach that object
///    may observe the instance.
///
/// The classification feeds the certification report (how much of a
/// client is slicing-friendly) and documents exactly why Stage-0 may
/// keep a partition fine: only HeapEscaping sites can alias across
/// otherwise unrelated variables, and those flows are what the
/// relatedness union-find tracks.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_DATAFLOW_ESCAPE_H
#define CANVAS_DATAFLOW_ESCAPE_H

#include "dataflow/PointsTo.h"

#include <map>
#include <string>

namespace canvas {
namespace dataflow {

enum class EscapeClass : uint8_t {
  MethodLocal = 0,
  ArgEscaping = 1,
  HeapEscaping = 2,
};

const char *escapeClassName(EscapeClass C);

struct EscapeResult {
  /// Classification per component allocation site (CompAlloc object
  /// index in the PTSystem object table).
  std::map<int, EscapeClass> Sites;
  unsigned NumLocal = 0;
  unsigned NumArg = 0;
  unsigned NumHeap = 0;

  std::string str(const PTSystem &Sys) const;
};

/// Classifies every CompAlloc site of \p Sys under solution \p Sol.
EscapeResult classifyEscapes(const PTSystem &Sys, const PointsToSolution &Sol);

} // namespace dataflow
} // namespace canvas

#endif // CANVAS_DATAFLOW_ESCAPE_H
