//===----------------------------------------------------------------------===//
///
/// \file
/// Instance slicing (Stage-0 pass 3): partitions a method's retained
/// component locals into copy/alias-connected slices so the SCMP
/// intraprocedural engine can run once per slice — O(E·Σ Bᵢ²) instead
/// of O(E·B²) with B = Σ Bᵢ.
///
/// Two variables land in the same slice when any action mentions both
/// (copies, call receiver/arguments/result, constructor arguments,
/// client-call arguments); method parameters are merged into one group
/// because they may already be related at method entry, and "$ret"
/// joins that group only when some edge actually assigns it (a method
/// that never returns a value cannot relate its return slot to
/// anything). A predicate instance over variables from *different*
/// slices can then never become true — no action ever relates the
/// objects — which is what makes per-slice certification
/// verdict-preserving (see DESIGN.md for the argument and the fallback
/// for definite violations).
///
/// Without alias information, slicing is forced off (one slice) when
/// the invariant cannot be established syntactically: heap component
/// references, havoc/opaque actions, possibly-uninitialized uses, or
/// abstractions with "ret"-reading update sources. When the caller
/// supplies a whole-program MethodAliasInfo (dataflow/PointsTo.h), the
/// heap and havoc gates are replaced by its may-interfere groups —
/// aliasing through the heap is then tracked, not feared — and
/// client-call edges stop merging their operands (a resolved call is
/// an identity frame; interference through the callee already shows up
/// in the alias groups). The uninitialized-use and ret-reading gates
/// remain in force either way.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_DATAFLOW_SLICING_H
#define CANVAS_DATAFLOW_SLICING_H

#include "dataflow/Dataflow.h"

#include <string>
#include <vector>

namespace canvas {
namespace dataflow {

struct MethodAliasInfo;

/// Cost model for the alias-refined slicing acceptance gate. Per-slice
/// certification is verdict-preserving but not free: every extra slice
/// pays a fixed overhead (a restricted boolean-program build, one more
/// annotation section in the SlicePartition certificate, and the
/// checker's mirror of both), while the win is the boolvar reduction in
/// the O(E·B²) fixpoints. An alias-group partition is accepted only
/// when the projected reduction beats that overhead:
///
///   B(R)² − Σᵢ B(rᵢ)² ≥ PerSliceOverhead · (k − 1)
///
/// with B(·) the projected boolean-variable count of a variable set
/// (instrumentation-family instances over it) and k the slice count.
/// Syntactic (mode-0) partitions are not gated — they carry no
/// points-to payload and their methods had to be heap-free already.
struct SliceCostModel {
  /// Per-slot client types of each instrumentation-predicate family,
  /// resolved against the component spec (wp::PredicateFamily::VarTypes
  /// in declaration order). Drives the projected boolvar count: an
  /// arity-1 family over a type with n variables contributes n
  /// instances, an arity-2 family n₁·n₂ (or n·(n−1) when both slots
  /// share a type — diagonal instances fold to constants).
  std::vector<std::vector<std::string>> FamilySlotTypes;
  /// Fixed per-extra-slice overhead in the same squared-boolvar units
  /// as the fixpoint cost model, calibrated on the alias bench suite
  /// (bench/bench_certification.cpp "tvla-pointsto-slicing"): large
  /// enough to refuse a 2×4-variable split whose overhead outweighs the
  /// tiny fixpoints, small enough to keep every multi-pipeline client
  /// sliced.
  double PerSliceOverhead = 256.0;

  /// Projected boolean-variable count for one slice's variable set,
  /// given each variable's declared component type.
  double projectedBoolVars(
      const std::vector<std::pair<std::string, std::string>> &TypedVars) const;
};

struct SliceResult {
  /// Partition of the retained variables; slices and the variables
  /// within them follow declaration order. Always at least one slice
  /// when the retained set is nonempty.
  std::vector<std::vector<std::string>> Slices;
  /// When slicing was forced off, the reason (static string); null
  /// otherwise.
  const char *ForcedSingleReason = nullptr;
};

/// Computes the slice partition of \p Retained for \p M (normally the
/// pruned, dead-store-eliminated CFG). \p HasUninitUses and
/// \p AbsReadsRetSources communicate the Stage-0 gates that force a
/// single slice. \p Alias, when non-null, must be the points-to
/// relatedness partition computed for this method over the whole
/// program (PointsToResult::aliasFor); it relaxes the heap/havoc gates
/// and refines the entry and client-call merges. \p Cost, when non-null
/// alongside \p Alias, applies the SliceCostModel acceptance gate to
/// the resulting partition; a refused partition degrades to a single
/// slice with a ForcedSingleReason, never to different verdicts.
SliceResult computeSlices(const cj::CFGMethod &M,
                          const std::vector<std::string> &Retained,
                          bool HasUninitUses, bool AbsReadsRetSources,
                          const MethodAliasInfo *Alias = nullptr,
                          const SliceCostModel *Cost = nullptr);

} // namespace dataflow
} // namespace canvas

#endif // CANVAS_DATAFLOW_SLICING_H
