//===----------------------------------------------------------------------===//
///
/// \file
/// Instance slicing (Stage-0 pass 3): partitions a method's retained
/// component locals into copy/alias-connected slices so the SCMP
/// intraprocedural engine can run once per slice — O(E·Σ Bᵢ²) instead
/// of O(E·B²) with B = Σ Bᵢ.
///
/// Two variables land in the same slice when any action mentions both
/// (copies, call receiver/arguments/result, constructor arguments,
/// client-call arguments); method parameters are merged into one group
/// because they may already be related at method entry, and "$ret"
/// joins that group only when some edge actually assigns it (a method
/// that never returns a value cannot relate its return slot to
/// anything). A predicate instance over variables from *different*
/// slices can then never become true — no action ever relates the
/// objects — which is what makes per-slice certification
/// verdict-preserving (see DESIGN.md for the argument and the fallback
/// for definite violations).
///
/// Without alias information, slicing is forced off (one slice) when
/// the invariant cannot be established syntactically: heap component
/// references, havoc/opaque actions, possibly-uninitialized uses, or
/// abstractions with "ret"-reading update sources. When the caller
/// supplies a whole-program MethodAliasInfo (dataflow/PointsTo.h), the
/// heap and havoc gates are replaced by its may-interfere groups —
/// aliasing through the heap is then tracked, not feared — and
/// client-call edges stop merging their operands (a resolved call is
/// an identity frame; interference through the callee already shows up
/// in the alias groups). The uninitialized-use and ret-reading gates
/// remain in force either way.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_DATAFLOW_SLICING_H
#define CANVAS_DATAFLOW_SLICING_H

#include "dataflow/Dataflow.h"

#include <string>
#include <vector>

namespace canvas {
namespace dataflow {

struct MethodAliasInfo;

struct SliceResult {
  /// Partition of the retained variables; slices and the variables
  /// within them follow declaration order. Always at least one slice
  /// when the retained set is nonempty.
  std::vector<std::vector<std::string>> Slices;
  /// When slicing was forced off, the reason (static string); null
  /// otherwise.
  const char *ForcedSingleReason = nullptr;
};

/// Computes the slice partition of \p Retained for \p M (normally the
/// pruned, dead-store-eliminated CFG). \p HasUninitUses and
/// \p AbsReadsRetSources communicate the Stage-0 gates that force a
/// single slice. \p Alias, when non-null, must be the points-to
/// relatedness partition computed for this method over the whole
/// program (PointsToResult::aliasFor); it relaxes the heap/havoc gates
/// and refines the entry and client-call merges.
SliceResult computeSlices(const cj::CFGMethod &M,
                          const std::vector<std::string> &Retained,
                          bool HasUninitUses, bool AbsReadsRetSources,
                          const MethodAliasInfo *Alias = nullptr);

} // namespace dataflow
} // namespace canvas

#endif // CANVAS_DATAFLOW_SLICING_H
