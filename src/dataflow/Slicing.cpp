#include "dataflow/Slicing.h"

#include "dataflow/PointsTo.h"

#include <map>
#include <numeric>

using namespace canvas;
using namespace canvas::dataflow;

namespace {

/// Plain union-find over dense variable indices.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  int find(int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(int A, int B) { Parent[find(A)] = find(B); }

private:
  std::vector<int> Parent;
};

} // namespace

double SliceCostModel::projectedBoolVars(
    const std::vector<std::pair<std::string, std::string>> &TypedVars) const {
  // Count variables per component type once; each family contributes
  // the number of its non-degenerate instantiations over the set.
  std::map<std::string, size_t> ByType;
  for (const auto &VarAndType : TypedVars)
    ++ByType[VarAndType.second];
  auto Count = [&](const std::string &T) -> double {
    auto It = ByType.find(T);
    return It == ByType.end() ? 0.0 : static_cast<double>(It->second);
  };
  double B = 0;
  for (const std::vector<std::string> &Slots : FamilySlotTypes) {
    if (Slots.size() == 1) {
      B += Count(Slots[0]);
    } else if (Slots.size() == 2) {
      double N0 = Count(Slots[0]);
      // Same-type pairs lose the diagonal: an instance over (x, x)
      // folds to a constant (bp::Builder's canonical conjunction
      // carries x != y).
      B += Slots[0] == Slots[1] ? N0 * (N0 - 1) : N0 * Count(Slots[1]);
    }
    // Wider families are not instantiated by the boolean-program
    // builder; they contribute nothing to either side of the gate.
  }
  return B;
}

SliceResult dataflow::computeSlices(const cj::CFGMethod &M,
                                    const std::vector<std::string> &Retained,
                                    bool HasUninitUses,
                                    bool AbsReadsRetSources,
                                    const MethodAliasInfo *Alias,
                                    const SliceCostModel *Cost) {
  SliceResult R;
  if (Retained.empty())
    return R;

  auto Single = [&](const char *Why) {
    R.Slices.assign(1, Retained);
    R.ForcedSingleReason = Why;
    return R;
  };

  // Gates that hold with or without alias information: both concern
  // what the boolean program may read, not where references flow.
  if (HasUninitUses)
    return Single("possibly-uninitialized component uses");
  if (AbsReadsRetSources)
    return Single("abstraction reads pre-call 'ret' predicates");

  // Without points-to evidence, any heap traffic or havocked reference
  // breaks the "cross-slice predicates stay false" invariant, so the
  // whole method stays one slice.
  if (!Alias) {
    if (M.HasHeapComponentRefs)
      return Single("heap component references");
    for (const cj::CFGEdge &E : M.Edges)
      if (E.Act.K == cj::Action::Kind::Havoc ||
          E.Act.K == cj::Action::Kind::OpaqueEffect)
        return Single("havocked component reference");
  }

  std::map<std::string, int> Index;
  for (size_t I = 0; I != Retained.size(); ++I)
    Index.emplace(Retained[I], static_cast<int>(I));
  auto IndexOf = [&](const std::string &V) {
    auto It = Index.find(V);
    return It == Index.end() ? -1 : It->second;
  };

  UnionFind UF(Retained.size());
  auto Merge = [&](int &Anchor, const std::string &V) {
    int I = IndexOf(V);
    if (I < 0)
      return;
    if (Anchor < 0)
      Anchor = I;
    else
      UF.merge(Anchor, I);
  };

  if (Alias) {
    // The whole-program relatedness groups already close over action
    // operands, heap aliasing, and interprocedural flow — including
    // what reaches the parameters from every caller — so they are the
    // partition, intersected with the retained set.
    for (const std::vector<std::string> &G : Alias->Groups) {
      int Anchor = -1;
      for (const std::string &V : G)
        Merge(Anchor, V);
    }
  } else {
    // Parameters may be related before the method runs; the return
    // slot joins them only when some action actually assigns it (a
    // method with no return statement cannot relate "$ret" to
    // anything).
    int ParamAnchor = -1;
    for (const cj::CParam &P : M.Method->Params)
      Merge(ParamAnchor, P.Name);
    bool DefinesRet = false;
    for (const cj::CFGEdge &E : M.Edges)
      if (const std::string *Def = actionDef(E.Act))
        DefinesRet |= *Def == "$ret";
    if (DefinesRet)
      Merge(ParamAnchor, "$ret");

    // Any action relating two variables merges their slices.
    for (const cj::CFGEdge &E : M.Edges) {
      int Anchor = -1;
      if (const std::string *Def = actionDef(E.Act))
        Merge(Anchor, *Def);
      forEachActionUse(E.Act,
                       [&](const std::string &Use) { Merge(Anchor, Use); });
    }
  }

  // Emit slices in declaration order of their first member.
  std::map<int, size_t> RootToSlice;
  for (size_t I = 0; I != Retained.size(); ++I) {
    int Root = UF.find(static_cast<int>(I));
    auto It = RootToSlice.find(Root);
    if (It == RootToSlice.end()) {
      It = RootToSlice.emplace(Root, R.Slices.size()).first;
      R.Slices.emplace_back();
    }
    R.Slices[It->second].push_back(Retained[I]);
  }

  // Acceptance gate on alias-refined partitions: the projected boolvar
  // reduction must beat the fixed per-slice overhead (see
  // SliceCostModel). The type of every retained variable comes from the
  // method's component-variable table.
  if (Alias && Cost && R.Slices.size() > 1) {
    auto TypeOf = [&](const std::string &V) -> const std::string & {
      static const std::string None;
      for (const auto &NameAndType : M.CompVars)
        if (NameAndType.first == V)
          return NameAndType.second;
      return None;
    };
    auto Typed = [&](const std::vector<std::string> &Vars) {
      std::vector<std::pair<std::string, std::string>> TV;
      TV.reserve(Vars.size());
      for (const std::string &V : Vars)
        TV.emplace_back(V, TypeOf(V));
      return TV;
    };
    const double Whole = Cost->projectedBoolVars(Typed(Retained));
    double SlicedWork = 0;
    for (const std::vector<std::string> &S : R.Slices) {
      double B = Cost->projectedBoolVars(Typed(S));
      SlicedWork += B * B;
    }
    const double Saved = Whole * Whole - SlicedWork;
    const double Overhead =
        Cost->PerSliceOverhead * static_cast<double>(R.Slices.size() - 1);
    if (Saved < Overhead)
      return Single("projected slicing win below per-slice overhead");
  }
  return R;
}
