#include "dataflow/Slicing.h"

#include "dataflow/PointsTo.h"

#include <map>
#include <numeric>

using namespace canvas;
using namespace canvas::dataflow;

namespace {

/// Plain union-find over dense variable indices.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  int find(int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(int A, int B) { Parent[find(A)] = find(B); }

private:
  std::vector<int> Parent;
};

} // namespace

SliceResult dataflow::computeSlices(const cj::CFGMethod &M,
                                    const std::vector<std::string> &Retained,
                                    bool HasUninitUses,
                                    bool AbsReadsRetSources,
                                    const MethodAliasInfo *Alias) {
  SliceResult R;
  if (Retained.empty())
    return R;

  auto Single = [&](const char *Why) {
    R.Slices.assign(1, Retained);
    R.ForcedSingleReason = Why;
    return R;
  };

  // Gates that hold with or without alias information: both concern
  // what the boolean program may read, not where references flow.
  if (HasUninitUses)
    return Single("possibly-uninitialized component uses");
  if (AbsReadsRetSources)
    return Single("abstraction reads pre-call 'ret' predicates");

  // Without points-to evidence, any heap traffic or havocked reference
  // breaks the "cross-slice predicates stay false" invariant, so the
  // whole method stays one slice.
  if (!Alias) {
    if (M.HasHeapComponentRefs)
      return Single("heap component references");
    for (const cj::CFGEdge &E : M.Edges)
      if (E.Act.K == cj::Action::Kind::Havoc ||
          E.Act.K == cj::Action::Kind::OpaqueEffect)
        return Single("havocked component reference");
  }

  std::map<std::string, int> Index;
  for (size_t I = 0; I != Retained.size(); ++I)
    Index.emplace(Retained[I], static_cast<int>(I));
  auto IndexOf = [&](const std::string &V) {
    auto It = Index.find(V);
    return It == Index.end() ? -1 : It->second;
  };

  UnionFind UF(Retained.size());
  auto Merge = [&](int &Anchor, const std::string &V) {
    int I = IndexOf(V);
    if (I < 0)
      return;
    if (Anchor < 0)
      Anchor = I;
    else
      UF.merge(Anchor, I);
  };

  if (Alias) {
    // The whole-program relatedness groups already close over action
    // operands, heap aliasing, and interprocedural flow — including
    // what reaches the parameters from every caller — so they are the
    // partition, intersected with the retained set.
    for (const std::vector<std::string> &G : Alias->Groups) {
      int Anchor = -1;
      for (const std::string &V : G)
        Merge(Anchor, V);
    }
  } else {
    // Parameters may be related before the method runs; the return
    // slot joins them only when some action actually assigns it (a
    // method with no return statement cannot relate "$ret" to
    // anything).
    int ParamAnchor = -1;
    for (const cj::CParam &P : M.Method->Params)
      Merge(ParamAnchor, P.Name);
    bool DefinesRet = false;
    for (const cj::CFGEdge &E : M.Edges)
      if (const std::string *Def = actionDef(E.Act))
        DefinesRet |= *Def == "$ret";
    if (DefinesRet)
      Merge(ParamAnchor, "$ret");

    // Any action relating two variables merges their slices.
    for (const cj::CFGEdge &E : M.Edges) {
      int Anchor = -1;
      if (const std::string *Def = actionDef(E.Act))
        Merge(Anchor, *Def);
      forEachActionUse(E.Act,
                       [&](const std::string &Use) { Merge(Anchor, Use); });
    }
  }

  // Emit slices in declaration order of their first member.
  std::map<int, size_t> RootToSlice;
  for (size_t I = 0; I != Retained.size(); ++I) {
    int Root = UF.find(static_cast<int>(I));
    auto It = RootToSlice.find(Root);
    if (It == RootToSlice.end()) {
      It = RootToSlice.emplace(Root, R.Slices.size()).first;
      R.Slices.emplace_back();
    }
    R.Slices[It->second].push_back(Retained[I]);
  }
  return R;
}
