#include "dataflow/Slicing.h"

#include <map>
#include <numeric>

using namespace canvas;
using namespace canvas::dataflow;

namespace {

/// Plain union-find over dense variable indices.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  int find(int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(int A, int B) { Parent[find(A)] = find(B); }

private:
  std::vector<int> Parent;
};

} // namespace

SliceResult dataflow::computeSlices(const cj::CFGMethod &M,
                                    const std::vector<std::string> &Retained,
                                    bool HasUninitUses,
                                    bool AbsReadsRetSources) {
  SliceResult R;
  if (Retained.empty())
    return R;

  auto Single = [&](const char *Why) {
    R.Slices.assign(1, Retained);
    R.ForcedSingleReason = Why;
    return R;
  };

  // Gates: any of these breaks the "cross-slice predicates stay false"
  // invariant, so the whole method stays one slice.
  if (M.HasHeapComponentRefs)
    return Single("heap component references");
  if (HasUninitUses)
    return Single("possibly-uninitialized component uses");
  if (AbsReadsRetSources)
    return Single("abstraction reads pre-call 'ret' predicates");
  for (const cj::CFGEdge &E : M.Edges)
    if (E.Act.K == cj::Action::Kind::Havoc ||
        E.Act.K == cj::Action::Kind::OpaqueEffect)
      return Single("havocked component reference");

  std::map<std::string, int> Index;
  for (size_t I = 0; I != Retained.size(); ++I)
    Index.emplace(Retained[I], static_cast<int>(I));
  auto IndexOf = [&](const std::string &V) {
    auto It = Index.find(V);
    return It == Index.end() ? -1 : It->second;
  };

  UnionFind UF(Retained.size());
  auto Merge = [&](int &Anchor, const std::string &V) {
    int I = IndexOf(V);
    if (I < 0)
      return;
    if (Anchor < 0)
      Anchor = I;
    else
      UF.merge(Anchor, I);
  };

  // Parameters (and $ret) may be related before the method runs.
  int ParamAnchor = -1;
  for (const cj::CParam &P : M.Method->Params)
    Merge(ParamAnchor, P.Name);
  Merge(ParamAnchor, "$ret");

  // Any action relating two variables merges their slices.
  for (const cj::CFGEdge &E : M.Edges) {
    int Anchor = -1;
    if (const std::string *Def = actionDef(E.Act))
      Merge(Anchor, *Def);
    forEachActionUse(E.Act, [&](const std::string &Use) { Merge(Anchor, Use); });
  }

  // Emit slices in declaration order of their first member.
  std::map<int, size_t> RootToSlice;
  for (size_t I = 0; I != Retained.size(); ++I) {
    int Root = UF.find(static_cast<int>(I));
    auto It = RootToSlice.find(Root);
    if (It == RootToSlice.end()) {
      It = RootToSlice.emplace(Root, R.Slices.size()).first;
      R.Slices.emplace_back();
    }
    R.Slices[It->second].push_back(Retained[I]);
  }
  return R;
}
