//===----------------------------------------------------------------------===//
///
/// \file
/// Definite-assignment lint for component locals (Stage-0 pass 1): a
/// forward may-be-uninitialized bit-vector analysis over the monotone
/// framework. Any use of a component local (call receiver, call or
/// constructor argument, copy source) that may still hold its
/// uninitialized junk value on some path is reported with the precise
/// call location — before any certification engine runs, where the
/// downstream engines could only report an opaque "potential violation".
///
/// Method parameters count as initialized on entry. Uses inside code
/// unreachable from the method entry are not reported.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_DATAFLOW_DEFINITEASSIGNMENT_H
#define CANVAS_DATAFLOW_DEFINITEASSIGNMENT_H

#include "dataflow/Dataflow.h"
#include "wp/Abstraction.h"

#include <string>
#include <vector>

namespace canvas {
namespace dataflow {

/// One possibly-uninitialized use of a component local.
struct UninitUse {
  std::string Var;
  /// Index of the CFG edge whose action performs the use.
  int Edge = -1;
  SourceLoc Loc;
  /// Rendered action text, e.g. "i.next()".
  std::string ActionText;
  /// True when the use feeds a component call that carries requires
  /// obligations under the derived abstraction — the cases where the
  /// engines would otherwise report an unexplained potential violation.
  bool RequiresBearing = false;
};

struct DefiniteAssignmentResult {
  std::vector<UninitUse> Uses;
  unsigned NodeVisits = 0;

  bool clean() const { return Uses.empty(); }
};

/// Runs the forward may-uninitialized analysis on \p M and collects
/// every possibly-uninitialized use, in edge order. \p Abs (optional)
/// is consulted to mark requires-bearing call sites. \p Cancel, when
/// given, bounds the fixpoint (see support/Budget.h). \p StatesOut,
/// when given, receives the per-node fixpoint (bit I set = CompVarMap
/// variable I may be uninitialized at node entry; an empty vector marks
/// an entry-unreachable node) — certificate emission derives its
/// must-assigned annotation from the complement.
DefiniteAssignmentResult
analyzeDefiniteAssignment(const cj::CFGMethod &M, const CFGInfo &Info,
                          const wp::DerivedAbstraction *Abs,
                          support::CancelToken *Cancel = nullptr,
                          std::vector<BitVector> *StatesOut = nullptr);

} // namespace dataflow
} // namespace canvas

#endif // CANVAS_DATAFLOW_DEFINITEASSIGNMENT_H
