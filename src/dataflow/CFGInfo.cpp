#include "dataflow/Dataflow.h"

using namespace canvas;
using namespace canvas::dataflow;

CFGInfo::CFGInfo(const cj::CFGMethod &Method) : M(&Method) {
  Succ.resize(Method.NumNodes);
  Pred.resize(Method.NumNodes);
  for (size_t E = 0; E != Method.Edges.size(); ++E) {
    Succ[Method.Edges[E].From].push_back(static_cast<int>(E));
    Pred[Method.Edges[E].To].push_back(static_cast<int>(E));
  }

  // Iterative post-order DFS from the entry; RPO = reversal.
  RPONumber.assign(Method.NumNodes, -1);
  if (Method.NumNodes == 0)
    return;
  std::vector<int> PostOrder;
  std::vector<char> Color(Method.NumNodes, 0); // 0 white, 1 gray, 2 black
  // Stack of (node, next successor-edge position).
  std::vector<std::pair<int, size_t>> Stack;
  Stack.emplace_back(Method.Entry, 0);
  Color[Method.Entry] = 1;
  while (!Stack.empty()) {
    auto &[N, Pos] = Stack.back();
    if (Pos < Succ[N].size()) {
      int Next = Method.Edges[Succ[N][Pos]].To;
      ++Pos;
      if (Color[Next] == 0) {
        Color[Next] = 1;
        Stack.emplace_back(Next, 0);
      }
    } else {
      Color[N] = 2;
      PostOrder.push_back(N);
      Stack.pop_back();
    }
  }
  NumReachable = static_cast<unsigned>(PostOrder.size());
  for (size_t I = 0; I != PostOrder.size(); ++I)
    RPONumber[PostOrder[PostOrder.size() - 1 - I]] = static_cast<int>(I);
}

PruneStats dataflow::pruneUnreachableEdges(cj::CFGMethod &M,
                                           std::vector<int> &OrigEdgeIndex) {
  CFGInfo Info(M);
  PruneStats Stats;
  Stats.NodesUnreachable =
      static_cast<unsigned>(M.NumNodes) - Info.numReachable();
  OrigEdgeIndex.clear();
  std::vector<cj::CFGEdge> Kept;
  Kept.reserve(M.Edges.size());
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    if (!Info.reachable(M.Edges[E].From)) {
      ++Stats.EdgesRemoved;
      continue;
    }
    OrigEdgeIndex.push_back(static_cast<int>(E));
    Kept.push_back(std::move(M.Edges[E]));
  }
  M.Edges = std::move(Kept);
  return Stats;
}
