//===----------------------------------------------------------------------===//
///
/// \file
/// A generic monotone dataflow framework over cj::CFGMethod: CFG
/// adjacency with reverse-post-order numbering, a priority worklist
/// solver parameterized over a lattice/transfer "problem", and small
/// shared helpers for reading component-variable defs and uses off CFG
/// actions.
///
/// The framework is the substrate of the Stage-0 client pre-analysis
/// (see PreAnalysis.h): definite assignment, component liveness,
/// instance slicing, and unreachable-edge pruning all run here before
/// any certification engine executes.
///
/// A Problem supplies:
///   using State = ...;                  // a join-semilattice element
///   State boundary() const;             // state at the direction origin
///   bool join(State &Dst, const State &Src) const;   // true if changed
///   State transfer(const cj::CFGEdge &E, const State &In) const;
///
/// For Direction::Forward, transfer maps the state at E.From to the
/// contribution joined into E.To; for Direction::Backward it maps the
/// state at E.To to the contribution joined into E.From.
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_DATAFLOW_DATAFLOW_H
#define CANVAS_DATAFLOW_DATAFLOW_H

#include "client/CFG.h"
#include "support/Budget.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace canvas {
namespace dataflow {

enum class Direction { Forward, Backward };

/// Precomputed adjacency and orderings for one method CFG. Nodes
/// unreachable from the entry (e.g. code after a return) have no
/// reverse-post-order number.
class CFGInfo {
public:
  explicit CFGInfo(const cj::CFGMethod &M);

  const cj::CFGMethod &method() const { return *M; }
  /// Outgoing / incoming edge indices of node \p N.
  const std::vector<int> &succEdges(int N) const { return Succ[N]; }
  const std::vector<int> &predEdges(int N) const { return Pred[N]; }
  /// True when \p N is reachable from the entry node.
  bool reachable(int N) const { return RPONumber[N] >= 0; }
  /// Reverse-post-order number of \p N (entry = 0), or -1 when
  /// unreachable from the entry.
  int rpoNumber(int N) const { return RPONumber[N]; }
  unsigned numReachable() const { return NumReachable; }

private:
  const cj::CFGMethod *M;
  std::vector<std::vector<int>> Succ;
  std::vector<std::vector<int>> Pred;
  std::vector<int> RPONumber;
  unsigned NumReachable = 0;
};

struct PruneStats {
  unsigned EdgesRemoved = 0;
  unsigned NodesUnreachable = 0;
};

/// Removes every edge whose source is unreachable from the entry node
/// (node ids are preserved; unreachable nodes simply lose their edges).
/// \p OrigEdgeIndex receives, per surviving edge, its index in the
/// original edge list, so downstream consumers can report results in
/// original program order.
PruneStats pruneUnreachableEdges(cj::CFGMethod &M,
                                 std::vector<int> &OrigEdgeIndex);

/// Maps the method's component-typed variable names to dense indices.
class CompVarMap {
public:
  explicit CompVarMap(const cj::CFGMethod &M) {
    for (const auto &[Name, Type] : M.CompVars) {
      Indices.emplace(Name, static_cast<int>(Names.size()));
      Names.push_back(Name);
      Types.push_back(Type);
    }
  }

  /// Dense index of \p Name, or -1 when it is not a component variable.
  int index(const std::string &Name) const {
    auto It = Indices.find(Name);
    return It == Indices.end() ? -1 : It->second;
  }
  size_t size() const { return Names.size(); }
  const std::string &name(int I) const { return Names[I]; }
  const std::string &type(int I) const { return Types[I]; }

private:
  std::vector<std::string> Names;
  std::vector<std::string> Types;
  std::map<std::string, int> Indices;
};

/// The component variable assigned by \p A, or null. The CFG builder
/// guarantees a nonempty Lhs is always component-typed.
inline const std::string *actionDef(const cj::Action &A) {
  switch (A.K) {
  case cj::Action::Kind::AllocComp:
  case cj::Action::Kind::CompCall:
  case cj::Action::Kind::Copy:
  case cj::Action::Kind::Havoc:
  case cj::Action::Kind::ClientCall:
    return A.Lhs.empty() ? nullptr : &A.Lhs;
  case cj::Action::Kind::Nop:
  case cj::Action::Kind::OpaqueEffect:
    return nullptr;
  }
  return nullptr;
}

/// Invokes \p F for every component-variable use of \p A: call
/// receivers, call/constructor arguments ("" marks an unknown argument
/// and is skipped), and copy sources. Uses are evaluated in the
/// pre-action state.
template <typename Fn> void forEachActionUse(const cj::Action &A, Fn &&F) {
  switch (A.K) {
  case cj::Action::Kind::CompCall:
    F(A.Recv);
    [[fallthrough]];
  case cj::Action::Kind::AllocComp:
  case cj::Action::Kind::ClientCall:
  case cj::Action::Kind::Copy:
    for (const std::string &Arg : A.Args)
      if (!Arg.empty())
        F(Arg);
    return;
  case cj::Action::Kind::Nop:
  case cj::Action::Kind::Havoc:
  case cj::Action::Kind::OpaqueEffect:
    return;
  }
}

/// Fixpoint of one dataflow problem: the state at each node on the
/// direction-origin side (forward: node entry; backward: node exit), or
/// nullopt when the node was never reached.
template <typename Problem> struct SolveResult {
  using State = typename Problem::State;
  std::vector<std::optional<State>> States;
  unsigned NodeVisits = 0;

  bool reached(int N) const { return States[N].has_value(); }
};

/// Runs the priority worklist fixpoint of \p P over \p Info's method.
/// Nodes are prioritized by reverse-post-order number (forward) or its
/// reverse (backward), which visits loop bodies before loop exits and
/// keeps the number of re-visits near the theoretical minimum for
/// reducible CFGs. \p Cancel, when given, is ticked once per worklist
/// pop (cooperative budget enforcement; see support/Budget.h).
template <typename Problem>
SolveResult<Problem> solve(const CFGInfo &Info, const Problem &P,
                           Direction Dir,
                           support::CancelToken *Cancel = nullptr) {
  const cj::CFGMethod &M = Info.method();
  SolveResult<Problem> R;
  R.States.resize(M.NumNodes);

  auto Priority = [&](int N) {
    int RPO = Info.rpoNumber(N);
    if (Dir == Direction::Forward)
      return RPO >= 0 ? RPO : M.NumNodes + N;
    // Backward: later nodes first; entry-unreachable islands last.
    return RPO >= 0 ? M.NumNodes - 1 - RPO : M.NumNodes + N;
  };

  std::set<std::pair<int, int>> Worklist;
  int Boundary = Dir == Direction::Forward ? M.Entry : M.Exit;
  R.States[Boundary] = P.boundary();
  Worklist.emplace(Priority(Boundary), Boundary);

  while (!Worklist.empty()) {
    support::faultProbe("dataflow.solve");
    if (Cancel)
      Cancel->tick();
    int N = Worklist.begin()->second;
    Worklist.erase(Worklist.begin());
    ++R.NodeVisits;
    const std::vector<int> &EdgeList =
        Dir == Direction::Forward ? Info.succEdges(N) : Info.predEdges(N);
    for (int EIdx : EdgeList) {
      const cj::CFGEdge &E = M.Edges[EIdx];
      int Tgt = Dir == Direction::Forward ? E.To : E.From;
      typename Problem::State Out = P.transfer(E, *R.States[N]);
      bool Changed;
      if (!R.States[Tgt]) {
        R.States[Tgt] = std::move(Out);
        Changed = true;
      } else {
        Changed = P.join(*R.States[Tgt], Out);
      }
      if (Changed)
        Worklist.emplace(Priority(Tgt), Tgt);
    }
  }
  return R;
}

/// Single-pass verification that a candidate solution \p R is a valid
/// post-fixpoint of problem \p P: (a) the boundary node carries an
/// annotation covering P.boundary(), and (b) every annotated state is
/// closed under the edge transfer functions — each transferred
/// contribution joins into its target annotation without change. A
/// candidate passing both over-approximates solve()'s least fixpoint,
/// so any property that holds of all annotated states holds of the
/// reachable concrete states. This is the generic form of the
/// coverage+closure obligation the proof-carrying certificate checker
/// (cert::Checker) discharges for the engine-specific formats; it
/// shares only the Problem's boundary/transfer/join evaluators with
/// solve(), never the worklist. Returns false on the first violated
/// obligation, describing it in \p WhyNot when non-null.
template <typename Problem>
bool checkSolution(const CFGInfo &Info, const Problem &P, Direction Dir,
                   const SolveResult<Problem> &R,
                   std::string *WhyNot = nullptr) {
  const cj::CFGMethod &M = Info.method();
  auto Fail = [&](std::string S) {
    if (WhyNot)
      *WhyNot = std::move(S);
    return false;
  };
  if (R.States.size() != static_cast<size_t>(M.NumNodes))
    return Fail("annotation size disagrees with the CFG");
  int Boundary = Dir == Direction::Forward ? M.Entry : M.Exit;
  if (!R.States[Boundary])
    return Fail("boundary node " + std::to_string(Boundary) +
                " has no annotation");
  {
    typename Problem::State Probe = *R.States[Boundary];
    if (P.join(Probe, P.boundary()))
      return Fail("boundary state not covered at node " +
                  std::to_string(Boundary));
  }
  for (int N = 0; N != M.NumNodes; ++N) {
    if (!R.States[N])
      continue;
    const std::vector<int> &EdgeList =
        Dir == Direction::Forward ? Info.succEdges(N) : Info.predEdges(N);
    for (int EIdx : EdgeList) {
      const cj::CFGEdge &E = M.Edges[EIdx];
      int Tgt = Dir == Direction::Forward ? E.To : E.From;
      typename Problem::State Out = P.transfer(E, *R.States[N]);
      if (!R.States[Tgt])
        return Fail("annotated node " + std::to_string(N) +
                    " flows into unannotated node " + std::to_string(Tgt));
      typename Problem::State Probe = *R.States[Tgt];
      if (P.join(Probe, Out))
        return Fail("annotation not closed across edge " +
                    std::to_string(E.From) + "->" + std::to_string(E.To));
    }
  }
  return true;
}

/// Shared state shape for the bit-vector problems (definite assignment,
/// liveness): one bit per component variable.
using BitVector = std::vector<bool>;

/// Joins \p Src into \p Dst by elementwise OR; returns true on change.
inline bool joinUnion(BitVector &Dst, const BitVector &Src) {
  bool Changed = false;
  for (size_t I = 0; I != Dst.size(); ++I)
    if (Src[I] && !Dst[I]) {
      Dst[I] = true;
      Changed = true;
    }
  return Changed;
}

} // namespace dataflow
} // namespace canvas

#endif // CANVAS_DATAFLOW_DATAFLOW_H
