#include "dataflow/DefiniteAssignment.h"

using namespace canvas;
using namespace canvas::dataflow;

namespace {

/// Forward problem: bit I set = variable I may be uninitialized. Any
/// assignment (including havoc — the variable then holds *some* value,
/// e.g. null) clears the bit; joins are unions, so a variable assigned
/// on only one branch stays possibly-uninitialized after the join.
struct MayUninitProblem {
  using State = BitVector;

  const CompVarMap &Vars;
  State Boundary;

  MayUninitProblem(const cj::CFGMethod &M, const CompVarMap &Vars)
      : Vars(Vars) {
    Boundary.assign(Vars.size(), true);
    for (const cj::CParam &P : M.Method->Params) {
      int I = Vars.index(P.Name);
      if (I >= 0)
        Boundary[I] = false;
    }
  }

  State boundary() const { return Boundary; }
  bool join(State &Dst, const State &Src) const { return joinUnion(Dst, Src); }
  State transfer(const cj::CFGEdge &E, const State &In) const {
    const std::string *Def = actionDef(E.Act);
    if (!Def)
      return In;
    State Out = In;
    int I = Vars.index(*Def);
    if (I >= 0)
      Out[I] = false;
    return Out;
  }
};

/// True when the called component method carries requires obligations.
bool callHasRequires(const cj::CFGMethod &M, const CompVarMap &Vars,
                     const cj::Action &A, const wp::DerivedAbstraction *Abs) {
  if (!Abs)
    return false;
  const wp::MethodAbstraction *MA = nullptr;
  if (A.K == cj::Action::Kind::AllocComp) {
    MA = Abs->findMethod(A.Callee, "new");
  } else if (A.K == cj::Action::Kind::CompCall) {
    int I = Vars.index(A.Recv);
    if (I >= 0)
      MA = Abs->findMethod(Vars.type(I), A.Callee);
  }
  (void)M;
  return MA && !MA->RequiresFalse.empty();
}

} // namespace

DefiniteAssignmentResult
dataflow::analyzeDefiniteAssignment(const cj::CFGMethod &M,
                                    const CFGInfo &Info,
                                    const wp::DerivedAbstraction *Abs,
                                    support::CancelToken *Cancel,
                                    std::vector<BitVector> *StatesOut) {
  DefiniteAssignmentResult R;
  CompVarMap Vars(M);
  if (Vars.size() == 0) {
    if (StatesOut)
      StatesOut->assign(M.NumNodes, BitVector());
    return R;
  }

  MayUninitProblem P(M, Vars);
  SolveResult<MayUninitProblem> S = solve(Info, P, Direction::Forward, Cancel);
  R.NodeVisits = S.NodeVisits;
  if (StatesOut) {
    StatesOut->assign(M.NumNodes, BitVector());
    for (int N = 0; N != M.NumNodes; ++N)
      if (S.reached(N))
        (*StatesOut)[N] = *S.States[N];
  }

  // Report uses against the pre-action state, in edge order.
  for (size_t E = 0; E != M.Edges.size(); ++E) {
    const cj::CFGEdge &Edge = M.Edges[E];
    if (!S.reached(Edge.From))
      continue;
    const BitVector &In = *S.States[Edge.From];
    bool Requires = callHasRequires(M, Vars, Edge.Act, Abs);
    forEachActionUse(Edge.Act, [&](const std::string &Use) {
      int I = Vars.index(Use);
      if (I < 0 || !In[I])
        return;
      UninitUse U;
      U.Var = Use;
      U.Edge = static_cast<int>(E);
      U.Loc = Edge.Act.Loc;
      U.ActionText = Edge.Act.str();
      U.RequiresBearing = Requires;
      R.Uses.push_back(std::move(U));
    });
  }
  return R;
}
