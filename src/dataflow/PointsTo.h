//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program Andersen-style points-to analysis over CJ client ASTs,
/// plus the instance-relatedness layer that justifies Stage-0 slice
/// partitions in the presence of heap traffic and client calls.
///
/// The analysis is flow-insensitive and field-sensitive. Its universe:
///
///  - Abstract objects: one per component allocation site (`new Set()`),
///    one per client-class allocation site (`new Holder()`), one per
///    component-call result site (`it = s.iterator()` — the component's
///    internal heap is opaque, so each call site stands for whatever
///    instance the component hands back there), a synthesized receiver
///    for `main`, and the distinguished Unknown object 0 standing for
///    everything the opaque outside world may hold.
///  - Nodes: one per (method, variable) including `this`, `$ret` and
///    parameters, plus synthesized temporaries for nested path loads
///    and call results.
///  - Constraints: the four Andersen forms (address-of, copy, field
///    load, field store). Resolved client calls contribute plain copy
///    constraints for argument/receiver/return binding — no merge — so
///    a call that provably never touches a slice acts as an identity
///    frame. Everything unresolvable routes through the Unknown
///    object's single summary field "*".
///
/// Relatedness: two component instances can only become co-operands of
/// a conformance-relevant action if (a) some action names both
/// (allocation, component call, copy, return), or (b) some variable may
/// denote either (aliasing through the heap). Both are closed over by a
/// union-find whose tokens are nodes and objects: every component-typed
/// node is merged with each object it may point to, and each
/// instance-relating action merges its operand nodes. The per-method
/// quotient of that global relation — MethodAliasInfo — is exactly the
/// "may interfere" partition computeSlices needs; see DESIGN.md
/// "Points-to, escape, and certified slicing" for the soundness
/// argument.
///
/// The constraint generator is deterministic in the (program, spec)
/// pair alone: the certificate checker regenerates the same system and
/// validates an analyzer-supplied solution with one closure sweep, so
/// no fixpoint driver enters the trusted base (cert/Checker.h).
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_DATAFLOW_POINTSTO_H
#define CANVAS_DATAFLOW_POINTSTO_H

#include "client/AST.h"
#include "easl/AST.h"
#include "support/Budget.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace canvas {
namespace dataflow {

/// One abstract heap object.
struct PTObject {
  enum class Kind : uint8_t {
    Unknown = 0, ///< The opaque outside world; always object index 0.
    CompAlloc,   ///< Component allocation site (`new Set()`).
    ClientAlloc, ///< Client-class allocation site (`new Holder()`).
    CompDerived, ///< Component-call result site (`s.iterator()`).
    MainContext, ///< Synthesized receiver instance for `main`.
  };
  Kind K = Kind::Unknown;
  std::string Method; ///< Allocating "Class::method" ("" for Unknown).
  std::string Type;   ///< Component/client class name ("" for Unknown).
  SourceLoc Loc;

  std::string str() const;
};

/// The deterministic constraint system generated from a whole CJ
/// program. Regenerated bit-identically by the certificate checker from
/// the same trusted (program, spec) inputs.
struct PTSystem {
  struct Constraint {
    enum class Kind : uint8_t {
      AddrOf, ///< {object Src} ⊆ pts(Dst)
      Copy,   ///< pts(Src) ⊆ pts(Dst)
      Load,   ///< ∀o ∈ pts(Src): pts(o.Field) ⊆ pts(Dst)
      Store,  ///< ∀o ∈ pts(Dst): pts(Src) ⊆ pts(o.Field)
    };
    Kind K = Kind::Copy;
    int Dst = -1;
    int Src = -1; ///< Node index; object index for AddrOf.
    std::string Field;
  };

  std::vector<PTObject> Objects; ///< [0] is always the Unknown object.
  /// (method, display name) per node; synthesized temporaries use
  /// "$pt<n>" names and never collide with CJ identifiers.
  std::vector<std::pair<std::string, std::string>> Nodes;
  std::vector<bool> NodeIsComp; ///< Component-typed node?
  std::vector<Constraint> Constraints;
  /// Node groups whose component instances an action co-relates
  /// (allocation/component-call operands, copies, returns — not
  /// resolved client calls).
  std::vector<std::vector<int>> Relations;
  /// Named component-typed variables per method, in creation order.
  std::map<std::string, std::vector<std::pair<std::string, int>>> MethodVars;
  /// Statically resolved client-call edges, caller → callees.
  std::map<std::string, std::vector<std::string>> CallGraph;
  bool HasMain = false;
  std::string MainName; ///< "Class::main" when HasMain.

  /// Node index of (method, var), -1 when absent.
  int nodeOf(const std::string &Method, const std::string &Var) const;
  /// Methods reachable from main (empty set when !HasMain).
  std::set<std::string> reachableFromMain() const;
};

/// Generates the constraint system for \p P against \p Spec. Pure in
/// its inputs; safe to call from the certificate checker.
PTSystem generateConstraints(const cj::Program &P, const easl::Spec &Spec);

/// A points-to solution: per-node and per-(object, field) sets of
/// object indices. Field "*" of object 0 is the opaque world's single
/// summary field; every store through object 0 lands there and every
/// load through it reads there (see fieldKey).
struct PointsToSolution {
  std::vector<std::set<int>> VarPts;
  std::map<std::pair<int, std::string>, std::set<int>> FieldPts;
  unsigned Iterations = 0;

  const std::set<int> &pts(int Node) const;
  const std::set<int> &fieldPts(int Obj, const std::string &Field) const;
};

/// Field-insensitive summary key for the Unknown object.
inline const std::string &fieldKey(int Obj, const std::string &Field) {
  static const std::string Star = "*";
  return Obj == 0 ? Star : Field;
}

/// Solves \p Sys to the least fixpoint by round-robin iteration.
/// Ticks \p Cancel once per constraint application and consults the
/// "points-to" fault probe site on entry.
PointsToSolution solveConstraints(const PTSystem &Sys,
                                  support::CancelToken *Cancel = nullptr);

/// Single-pass validation that \p Sol is closed under every constraint
/// of \p Sys (any post-fixpoint passes; used by the certificate
/// checker, which must not run a fixpoint). Returns false with \p Why
/// set on the first violated inclusion or out-of-range index.
bool checkSolutionClosed(const PTSystem &Sys, const PointsToSolution &Sol,
                         std::string &Why);

/// The may-interfere partition of one method's component variables:
/// two variables in different groups never denote related component
/// instances on any execution, so Stage-0 may slice them apart.
struct MethodAliasInfo {
  std::vector<std::vector<std::string>> Groups;

  /// True when \p A and \p B share a group (vars absent from every
  /// group never interfere with anything).
  bool related(const std::string &A, const std::string &B) const;
};

/// Quotients the global relatedness union-find per reachable method.
/// Deterministic; shared by the analyzer and the certificate checker.
std::map<std::string, MethodAliasInfo>
computeAliasGroups(const PTSystem &Sys, const PointsToSolution &Sol,
                   const std::set<std::string> &Reachable);

struct PointsToStats {
  unsigned Objects = 0;
  unsigned Nodes = 0;
  unsigned Constraints = 0;
  unsigned Iterations = 0;
  unsigned ReachableMethods = 0;
  unsigned TotalMethods = 0;
};

/// The full pre-analysis result fed to Stage-0 slicing, the certifier
/// report, and certificate emission.
struct PointsToResult {
  PTSystem Sys;
  PointsToSolution Sol;
  std::set<std::string> Reachable;
  /// Alias partitions, reachable methods only: an unreachable method
  /// never runs under the closed world, but we still refuse to refine
  /// its slices rather than reason from its (empty) entry points-to
  /// sets.
  std::map<std::string, MethodAliasInfo> Alias;
  PointsToStats Stats;

  const MethodAliasInfo *aliasFor(const std::string &Method) const;
};

/// Runs generation + solving + relatedness over \p P.
PointsToResult analyzePointsTo(const cj::Program &P, const easl::Spec &Spec,
                               support::CancelToken *Cancel = nullptr);

} // namespace dataflow
} // namespace canvas

#endif // CANVAS_DATAFLOW_POINTSTO_H
