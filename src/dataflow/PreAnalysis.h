//===----------------------------------------------------------------------===//
///
/// \file
/// The Stage-0 client pre-analysis: the cheapest stage of the staged
/// certification pipeline (Section 1.3), run after CFG construction and
/// before any engine. Per client method it
///
///   1. prunes edges unreachable from the entry (pass 4),
///   2. lints possibly-uninitialized component uses (pass 1),
///   3. eliminates dead component stores and drops component locals
///      that never reach a component call, shrinking B (pass 2),
///   4. partitions the surviving locals into copy/alias-connected
///      slices for per-slice SCMP certification (pass 3).
///
/// All transformations are verdict-preserving for the intraprocedural
/// SCMP engine: the requires checks of pruned calls are re-synthesized
/// with outcome "unreachable", and slicing falls back to the unsliced
/// run when a definite violation could truncate paths (see
/// bp::analyzeIntraprocSliced and DESIGN.md "Stage 0 pre-analysis").
///
//===----------------------------------------------------------------------===//

#ifndef CANVAS_DATAFLOW_PREANALYSIS_H
#define CANVAS_DATAFLOW_PREANALYSIS_H

#include "dataflow/DefiniteAssignment.h"
#include "dataflow/Liveness.h"
#include "dataflow/Slicing.h"
#include "wp/Abstraction.h"

#include <string>
#include <vector>

namespace canvas {
namespace dataflow {

struct PointsToResult;

struct PreAnalysisOptions {
  bool PruneUnreachable = true;
  bool Lint = true;
  bool EliminateDeadStores = true;
  bool Slice = true;
  /// Optional budget handle bounding the Stage-0 fixpoints (not owned).
  support::CancelToken *Cancel = nullptr;
  /// Optional whole-program points-to result (not owned). When set,
  /// slicing uses its per-method may-interfere groups instead of the
  /// syntactic heap/havoc gates — see dataflow/PointsTo.h.
  const PointsToResult *PointsTo = nullptr;
};

/// A requires obligation that sat on a pruned (entry-unreachable) edge.
/// Its verdict is "unreachable" by construction; the text matches what
/// the unpruned boolean program would have reported.
struct DroppedCheck {
  int OrigEdge = -1;
  SourceLoc Loc;
  std::string What;
};

/// The Stage-0 result for one client method.
struct MethodPlan {
  const cj::CFGMethod *Source = nullptr;
  /// Pruned, dead-store-eliminated working copy. Node ids and CompVars
  /// are preserved; only the edge list and dead actions change.
  cj::CFGMethod CFG;
  /// Per surviving edge, its index in Source->Edges.
  std::vector<int> OrigEdgeIndex;
  std::vector<DroppedCheck> DroppedChecks;
  /// Component locals still relevant to certification, declaration
  /// order. The boolean program is instantiated over these only.
  std::vector<std::string> Retained;
  /// Partition of Retained (at least one slice when nonempty).
  std::vector<std::vector<std::string>> Slices;
  const char *ForcedSingleReason = nullptr;

  unsigned EdgesPruned = 0;
  unsigned NodesUnreachable = 0;
  unsigned DeadStoresRemoved = 0;
  unsigned VarsDropped = 0;

  bool multiSlice() const { return Slices.size() > 1; }
};

struct PreAnalysisResult {
  /// Indexed like the ClientCFG's method list.
  std::vector<MethodPlan> Plans;
  /// Lint findings across all methods, method order then edge order.
  std::vector<UninitUse> Findings;
  /// Methods attributed per finding (parallel to Findings).
  std::vector<std::string> FindingMethods;

  unsigned totalEdgesPruned() const;
  unsigned totalDeadStores() const;
  unsigned totalVarsDropped() const;
  unsigned multiSliceMethods() const;
};

/// True when any update rule of \p Abs reads a predicate over "ret" in
/// the pre-call state; such abstractions keep unused call results
/// retained and disable slicing (no built-in spec triggers this).
bool abstractionReadsRetSources(const wp::DerivedAbstraction &Abs);

/// Runs Stage 0 on one method / a whole client.
MethodPlan preAnalyzeMethod(const cj::CFGMethod &M,
                            const wp::DerivedAbstraction &Abs,
                            const PreAnalysisOptions &Opts,
                            std::vector<UninitUse> *Findings);
PreAnalysisResult preAnalyze(const cj::ClientCFG &CFG,
                             const wp::DerivedAbstraction &Abs,
                             const PreAnalysisOptions &Opts = {});

} // namespace dataflow
} // namespace canvas

#endif // CANVAS_DATAFLOW_PREANALYSIS_H
