#include "dataflow/Escape.h"

using namespace canvas;
using namespace canvas::dataflow;

const char *dataflow::escapeClassName(EscapeClass C) {
  switch (C) {
  case EscapeClass::MethodLocal:
    return "method-local";
  case EscapeClass::ArgEscaping:
    return "arg-escaping";
  case EscapeClass::HeapEscaping:
    return "heap-escaping";
  }
  return "?";
}

std::string EscapeResult::str(const PTSystem &Sys) const {
  std::string Out;
  for (const auto &[Obj, C] : Sites) {
    Out += Sys.Objects[Obj].str();
    Out += ": ";
    Out += escapeClassName(C);
    Out += '\n';
  }
  return Out;
}

EscapeResult dataflow::classifyEscapes(const PTSystem &Sys,
                                       const PointsToSolution &Sol) {
  EscapeResult R;

  // Heap-escaping: the site appears in some object's field (including
  // the opaque world's summary field).
  std::set<int> InHeap;
  for (const auto &[Key, S] : Sol.FieldPts) {
    (void)Key;
    InHeap.insert(S.begin(), S.end());
  }

  for (size_t Obj = 0; Obj != Sys.Objects.size(); ++Obj) {
    if (Sys.Objects[Obj].K != PTObject::Kind::CompAlloc)
      continue;
    const std::string &Home = Sys.Objects[Obj].Method;
    EscapeClass C = EscapeClass::MethodLocal;
    if (InHeap.count(static_cast<int>(Obj))) {
      C = EscapeClass::HeapEscaping;
    } else {
      // Arg-escaping: some other method's local (or the allocator's own
      // return slot) may denote the instance.
      for (size_t N = 0; N != Sys.Nodes.size() && C == EscapeClass::MethodLocal;
           ++N) {
        if (!Sol.pts(static_cast<int>(N)).count(static_cast<int>(Obj)))
          continue;
        if (Sys.Nodes[N].first != Home ||
            Sys.Nodes[N].second == "$ret")
          C = EscapeClass::ArgEscaping;
      }
    }
    R.Sites[static_cast<int>(Obj)] = C;
    switch (C) {
    case EscapeClass::MethodLocal:
      ++R.NumLocal;
      break;
    case EscapeClass::ArgEscaping:
      ++R.NumArg;
      break;
    case EscapeClass::HeapEscaping:
      ++R.NumHeap;
      break;
    }
  }
  return R;
}
