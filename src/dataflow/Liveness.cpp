#include "dataflow/Liveness.h"

#include <set>

using namespace canvas;
using namespace canvas::dataflow;

namespace {

/// Backward problem: bit I set = variable I is live (its current value
/// may still reach a real use). Copies propagate liveness from target
/// to source; all other uses generate unconditionally.
struct LivenessProblem {
  using State = BitVector;

  const CompVarMap &Vars;
  State Boundary;

  LivenessProblem(const CompVarMap &Vars, bool RetLiveAtExit) : Vars(Vars) {
    Boundary.assign(Vars.size(), false);
    if (RetLiveAtExit) {
      int Ret = Vars.index("$ret");
      if (Ret >= 0)
        Boundary[Ret] = true;
    }
  }

  State boundary() const { return Boundary; }
  bool join(State &Dst, const State &Src) const { return joinUnion(Dst, Src); }

  /// Live-before = (live-after \ def) ∪ gen. For a copy x = y the
  /// source y is generated only when x was live after the copy.
  State transfer(const cj::CFGEdge &E, const State &LiveAfter) const {
    const cj::Action &A = E.Act;
    State Out = LiveAfter;
    bool DefWasLive = false;
    if (const std::string *Def = actionDef(A)) {
      int I = Vars.index(*Def);
      if (I >= 0) {
        DefWasLive = Out[I];
        Out[I] = false;
      }
    }
    if (A.K == cj::Action::Kind::Copy) {
      if (DefWasLive) {
        int Src = Vars.index(A.Args[0]);
        if (Src >= 0)
          Out[Src] = true;
      }
      return Out;
    }
    forEachActionUse(A, [&](const std::string &Use) {
      int I = Vars.index(Use);
      if (I >= 0)
        Out[I] = true;
    });
    return Out;
  }
};

} // namespace

LivenessResult dataflow::analyzeLiveness(const cj::CFGMethod &M,
                                         const CFGInfo &Info,
                                         bool RetLiveAtExit,
                                         support::CancelToken *Cancel) {
  LivenessResult R(M);
  LivenessProblem P(R.Vars, RetLiveAtExit);
  SolveResult<LivenessProblem> S = solve(Info, P, Direction::Backward, Cancel);
  R.LiveAt = std::move(S.States);
  R.NodeVisits = S.NodeVisits;
  return R;
}

DeadStoreStats dataflow::eliminateDeadStores(cj::CFGMethod &M,
                                             const LivenessResult &L,
                                             bool KeepCallResults,
                                             std::vector<std::string> &Retained) {
  DeadStoreStats Stats;

  // A store is dead when its target is not live immediately after the
  // edge. Only copies and havocs can be dropped outright: calls and
  // allocations keep their requires checks and their effects on other
  // component objects, so only their (unused) result binding dies, and
  // that happens through the retained-variable filter below.
  for (cj::CFGEdge &E : M.Edges) {
    cj::Action &A = E.Act;
    if (A.K != cj::Action::Kind::Copy && A.K != cj::Action::Kind::Havoc)
      continue;
    if (!L.LiveAt[E.To] || L.live(E.To, A.Lhs))
      continue;
    A = cj::Action{}; // Nop.
    ++Stats.StoresRemoved;
  }

  // Retained = variables used by any surviving action, plus call-result
  // bindings when the abstraction may read predicates over "ret".
  std::set<std::string> Used;
  for (const cj::CFGEdge &E : M.Edges) {
    forEachActionUse(E.Act, [&](const std::string &Use) { Used.insert(Use); });
    if (KeepCallResults && !E.Act.Lhs.empty() &&
        (E.Act.K == cj::Action::Kind::CompCall ||
         E.Act.K == cj::Action::Kind::AllocComp))
      Used.insert(E.Act.Lhs);
  }
  Retained.clear();
  for (const auto &[Name, Type] : M.CompVars) {
    (void)Type;
    if (Used.count(Name))
      Retained.push_back(Name);
    else
      ++Stats.VarsDropped;
  }
  return Stats;
}
