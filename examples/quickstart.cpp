//===----------------------------------------------------------------------===//
//
// Quickstart: staged certification of the paper's running example.
//
// Reproduces, end to end:
//   - Fig. 4: the automatically derived instrumentation predicates,
//   - Fig. 5: the derived component-method abstractions,
//   - Fig. 6: the transformed (boolean) client program,
//   - Fig. 8: the abstract state before/after statement 5, and
//   - the certification verdicts for the Fig. 3 client: real errors at
//     the i2/i1 uses, and *no* false alarm at the i3 use.
//
//===----------------------------------------------------------------------===//

#include "boolprog/Analysis.h"
#include "client/Parser.h"
#include "core/Certifier.h"
#include "easl/Builtins.h"

#include <cstdio>

using namespace canvas;

static const char *Fig3Client = R"(
  class Fig3 {
    void main() {
      Set v = new Set();            // 0
      Iterator i1 = v.iterator();   // 1
      Iterator i2 = v.iterator();   // 2
      Iterator i3 = i1;             // 3
      i1.next();                    // 4
      i1.remove();                  // 5
      if (*) { i2.next(); }         // 6: CME
      if (*) { i3.next(); }         // 7: no CME -- and no false alarm
      v.add();                      // 8
      if (*) { i1.next(); }         // 9: CME
    }
  }
)";

int main() {
  DiagnosticEngine Diags;

  // Stage 1-2: parse the CMP spec and derive its abstraction.
  core::Certifier Certifier(easl::cmpSpecSource(),
                            core::EngineKind::SCMPIntra, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  std::printf("=== Derived component abstraction (Figs. 4 & 5) ===\n%s\n",
              Certifier.abstraction().str().c_str());

  // Stage 3-4: build the boolean program and analyze the client.
  cj::Program Prog = cj::parseProgram(Fig3Client, Diags);
  easl::Spec const &Spec = Certifier.spec();
  cj::ClientCFG CFG = cj::buildCFG(Prog, Spec, Diags);
  const cj::CFGMethod *Main = CFG.mainCFG();
  bp::BooleanProgram BP =
      bp::buildBooleanProgram(Certifier.abstraction(), *Main, Diags);

  std::printf("=== Transformed client (Fig. 6 analogue) ===\n%s\n",
              BP.str().c_str());

  bp::IntraResult R = bp::analyzeIntraproc(BP);

  // The node after the i1.remove() edge shows the Fig. 8 state: stale_i2
  // has become 1 while stale_i1 and stale_i3 are still 0.
  for (size_t E = 0; E != Main->Edges.size(); ++E) {
    const cj::Action &A = Main->Edges[E].Act;
    if (A.K == cj::Action::Kind::CompCall && A.Callee == "remove") {
      std::printf("=== Abstract state before i1.remove() (Fig. 8) ===\n%s\n",
                  R.stateStr(BP, Main->Edges[E].From).c_str());
      std::printf("=== Abstract state after i1.remove() (Fig. 8) ===\n%s\n",
                  R.stateStr(BP, Main->Edges[E].To).c_str());
    }
  }

  std::printf("=== Certification report ===\n%s",
              R.reportStr(BP).c_str());

  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  return 0;
}
