//===----------------------------------------------------------------------===//
//
// The worklist scenario of Fig. 1: a make-style driver iterates over a
// worklist while item processing may grow it through a nested call —
// the archetypal interprocedural CMP bug.
//
// Demonstrates the context-sensitive interprocedural certifier
// (Section 8): it pinpoints the bug in the faulty driver and verifies
// the repaired one, where the iterator is re-created after each batch.
//
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "easl/Builtins.h"

#include <cstdio>

using namespace canvas;

// The buggy driver (Fig. 1 shape): processItem() -> doSubproblem() ->
// addItem() grows the worklist while the iterator is live.
static const char *BuggyMake = R"(
  class Make {
    void main() {
      Set worklist = new Set();
      initializeWorklist(worklist);
      processWorklist(worklist);
    }
    void initializeWorklist(Set w) { w.add(); }
    void processWorklist(Set w) {
      Iterator i = w.iterator();
      while (*) {
        i.next();                 // CME: the worklist may have grown
        if (*) { processItem(w); }
      }
    }
    void processItem(Set w) { doSubproblem(w); }
    void doSubproblem(Set w) {
      if (*) { addItem(w); }
    }
    void addItem(Set w) { w.add(); }
  }
)";

// The repaired driver: drain a snapshot per round, grow only between
// rounds, and re-create the iterator each round.
static const char *FixedMake = R"(
  class Make {
    void main() {
      Set worklist = new Set();
      initializeWorklist(worklist);
      processWorklist(worklist);
    }
    void initializeWorklist(Set w) { w.add(); }
    void processWorklist(Set w) {
      while (*) {
        Iterator i = w.iterator();
        while (*) {
          i.next();               // safe: w is stable during the drain
        }
        growBetweenRounds(w);
      }
    }
    void growBetweenRounds(Set w) { w.add(); }
  }
)";

static void certify(const char *Name, const char *Source) {
  DiagnosticEngine Diags;
  core::Certifier Certifier(easl::cmpSpecSource(),
                            core::EngineKind::SCMPInterproc, Diags);
  core::CertificationReport R = Certifier.certifySource(Source, Diags);
  std::printf("--- %s ---\n%s", Name, R.str().c_str());
  if (Diags.hasErrors())
    std::fprintf(stderr, "%s", Diags.str().c_str());
  std::printf("\n");
}

int main() {
  std::printf("Interprocedural CMP certification of the Fig. 1 worklist "
              "pattern.\n\n");
  certify("buggy make (Fig. 1)", BuggyMake);
  certify("repaired make", FixedMake);
  return 0;
}
