//===----------------------------------------------------------------------===//
//
// Stage-0 pre-analysis tour: the monotone-dataflow passes that run on
// the client before any certification engine.
//
// Shows, end to end:
//   - the definite-assignment conformance lint firing on a client that
//     may call a requires-bearing method on an uninitialized component
//     reference, with a precise source location and no engine involved,
//   - the per-method pre-analysis plan (pruned edges, dead stores,
//     instance slices) for a client with several independent
//     component pipelines, and
//   - an on/off certification comparison: identical verdicts, smaller
//     boolean programs.
//
//===----------------------------------------------------------------------===//

#include "client/Parser.h"
#include "core/Certifier.h"
#include "dataflow/PreAnalysis.h"
#include "easl/Builtins.h"

#include <cstdio>

using namespace canvas;

// A client with a possibly-uninitialized iterator: the lint catches the
// conformance problem before any boolean program is built.
static const char *LintClient = R"(
  class Sloppy {
    void main() {
      Set s = new Set();
      Iterator i;
      if (*) { i = s.iterator(); }
      i.next();
    }
  }
)";

// Two independent Set/Iterator pipelines plus a dead copy and a dead
// tail: every Stage-0 pass has something to do.
static const char *SliceClient = R"(
  class Pipelines {
    void main() {
      Set s = new Set();
      Iterator i = s.iterator();
      Set t = new Set();
      Iterator j = t.iterator();
      Iterator dead = i;
      if (*) { s.add(); }
      i.next();
      j.next();
      return;
      t.add();
    }
  }
)";

static core::CertificationReport certify(const char *Source, bool Pre) {
  DiagnosticEngine Diags;
  core::CertifierOptions Opts;
  Opts.PreAnalysis = Pre;
  core::Certifier C(easl::cmpSpecSource(), core::EngineKind::SCMPIntra, Diags,
                    {}, Opts);
  core::CertificationReport R = C.certifySource(Source, Diags);
  if (Diags.hasErrors())
    std::fprintf(stderr, "%s", Diags.str().c_str());
  return R;
}

int main() {
  // --- 1. The conformance lint. -------------------------------------
  std::printf("=== Stage-0 lint on an uninitialized-iterator client ===\n");
  core::CertificationReport Lint = certify(LintClient, true);
  std::printf("%s\n", Lint.str().c_str());

  // --- 2. The raw per-method plan. ----------------------------------
  DiagnosticEngine Diags;
  easl::Spec Spec = easl::parseSpec(easl::cmpSpecSource(), Diags);
  wp::DerivedAbstraction Abs = wp::deriveAbstraction(Spec, Diags);
  cj::Program Prog = cj::parseProgram(SliceClient, Diags);
  cj::ClientCFG CFG = cj::buildCFG(Prog, Spec, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  dataflow::PreAnalysisResult PA = dataflow::preAnalyze(CFG, Abs);
  std::printf("=== Stage-0 plan for the pipelines client ===\n");
  for (const dataflow::MethodPlan &Plan : PA.Plans) {
    std::printf("%s: %u edge(s) pruned, %u dead store(s), %u var(s) "
                "dropped\n",
                Plan.Source->name().c_str(), Plan.EdgesPruned,
                Plan.DeadStoresRemoved, Plan.VarsDropped);
    for (size_t S = 0; S != Plan.Slices.size(); ++S) {
      std::printf("  slice %zu: {", S);
      for (size_t V = 0; V != Plan.Slices[S].size(); ++V)
        std::printf("%s%s", V ? ", " : "", Plan.Slices[S][V].c_str());
      std::printf("}\n");
    }
    if (Plan.ForcedSingleReason)
      std::printf("  (single slice forced: %s)\n", Plan.ForcedSingleReason);
  }
  std::printf("\n");

  // --- 3. On/off comparison. ----------------------------------------
  core::CertificationReport On = certify(SliceClient, true);
  core::CertificationReport Off = certify(SliceClient, false);
  std::printf("=== Certification with pre-analysis ON ===\n%s\n",
              On.str().c_str());
  std::printf("=== Certification with pre-analysis OFF ===\n%s\n",
              Off.str().c_str());
  std::printf("boolean program size B: %zu with pre-analysis (peak %zu), "
              "%zu without (peak %zu)\n",
              On.BoolVars, On.MaxBoolVars, Off.BoolVars, Off.MaxBoolVars);

  bool Same = On.Checks.size() == Off.Checks.size();
  for (size_t I = 0; Same && I != On.Checks.size(); ++I)
    Same = On.Checks[I].Outcome == Off.Checks[I].Outcome &&
           On.Checks[I].Loc.Line == Off.Checks[I].Loc.Line;
  std::printf("verdicts identical: %s\n", Same ? "yes" : "NO");
  return Same ? 0 : 1;
}
