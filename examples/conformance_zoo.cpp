//===----------------------------------------------------------------------===//
//
// The Section 2.2 conformance-problem zoo: certifies clients of the
// Grabbed Resource Problem (GRP), the Implementation Mismatch Problem
// (IMP), and the Alien Object Problem (AOP) with certifiers generated
// from their Easl specifications, and classifies every spec per
// Section 6 (mutation-restricted or not).
//
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "easl/Builtins.h"
#include "easl/Parser.h"
#include "wp/MutationRestricted.h"

#include <cstdio>

using namespace canvas;

static const char *GRPClient = R"(
  class Traversals {
    void main() {
      Graph g = new Graph();
      Traversal depthFirst = g.traverse();
      depthFirst.visitNext();
      Traversal breadthFirst = g.traverse();   // preempts depthFirst
      breadthFirst.visitNext();
      if (*) { depthFirst.visitNext(); }       // GRP violation
    }
  }
)";

static const char *IMPClient = R"(
  class Widgets {
    void main() {
      Factory metal = new Factory();
      Factory wood = new Factory();
      Widget hinge = metal.make();
      Widget bracket = metal.make();
      Widget dowel = wood.make();
      hinge.combine(bracket);                   // same factory: fine
      if (*) { hinge.combine(dowel); }          // IMP violation
    }
  }
)";

static const char *AOPClient = R"(
  class Graphs {
    void main() {
      GraphA flights = new GraphA();
      GraphA roads = new GraphA();
      Vertex jfk = flights.newVertex();
      Vertex lax = flights.newVertex();
      Vertex i95 = roads.newVertex();
      flights.addEdge(jfk, lax);                // both belong: fine
      if (*) { flights.addEdge(jfk, i95); }     // alien vertex
    }
  }
)";

static void runProblem(const char *Name, const char *SpecSrc,
                       const char *ClientSrc) {
  std::printf("===== %s =====\n", Name);
  easl::Spec S = easl::parseBuiltinSpec(SpecSrc);
  std::printf("--- Section 6 classification ---\n%s",
              wp::classifySpec(S).str().c_str());

  DiagnosticEngine Diags;
  core::Certifier Certifier(SpecSrc, core::EngineKind::SCMPIntra, Diags);
  std::printf("--- Derived abstraction ---\n%s",
              Certifier.abstraction().str().c_str());
  core::CertificationReport R = Certifier.certifySource(ClientSrc, Diags);
  std::printf("--- Certification ---\n%s\n", R.str().c_str());
  if (Diags.hasErrors())
    std::fprintf(stderr, "%s", Diags.str().c_str());
}

int main() {
  runProblem("Grabbed Resource Problem (GRP)", easl::grpSpecSource(),
             GRPClient);
  runProblem("Implementation Mismatch Problem (IMP)", easl::impSpecSource(),
             IMPClient);
  runProblem("Alien Object Problem (AOP)", easl::aopSpecSource(),
             AOPClient);
  return 0;
}
