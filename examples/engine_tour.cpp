//===----------------------------------------------------------------------===//
//
// Engine tour: runs every certification engine (Section 1.3 step 3 —
// "by choosing between different analysis engines, it is possible to
// obtain certifiers with various time/space/precision tradeoffs") on
// the same client and prints their verdicts side by side, together with
// the first-order TVP rendering of the derived abstraction (Figs. 10/11).
//
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "easl/Builtins.h"
#include "tvp/Program.h"

#include <cstdio>

using namespace canvas;

static const char *Client = R"(
  class Mixed {
    void main() {
      Set a = new Set();
      Set b = new Set();
      Iterator ia = a.iterator();
      Iterator ib = b.iterator();
      while (*) {
        b.add();                 // only b's iterator is invalidated
      }
      ia.next();                 // safe
      if (*) { ib.next(); }      // potential CME
      ib = b.iterator();
      ib.next();                 // safe again
    }
  }
)";

int main() {
  const core::EngineKind Engines[] = {
      core::EngineKind::SCMPIntra, core::EngineKind::SCMPInterproc,
      core::EngineKind::TVLAIndependent, core::EngineKind::TVLARelational,
      core::EngineKind::GenericAllocSite};

  for (core::EngineKind K : Engines) {
    DiagnosticEngine Diags;
    core::Certifier Certifier(easl::cmpSpecSource(), K, Diags);
    core::CertificationReport R = Certifier.certifySource(Client, Diags);
    std::printf("===== engine: %s =====\n%s\n", core::engineName(K),
                R.str().c_str());
    if (Diags.hasErrors())
      std::fprintf(stderr, "%s", Diags.str().c_str());
  }

  DiagnosticEngine Diags;
  core::Certifier Certifier(easl::cmpSpecSource(),
                            core::EngineKind::TVLAIndependent, Diags);
  std::printf("===== TVP renderings =====\n%s\n%s",
              tvp::renderStandardTranslation().c_str(),
              tvp::renderSpecializedTranslation(Certifier.abstraction())
                  .c_str());
  return 0;
}
