//===----------------------------------------------------------------------===//
//
// canvas_certify: command-line front end for the staged certifier.
//
//   canvas_certify [--engine=NAME] [--spec=FILE|cmp|grp|imp|aop]
//                  [--print-abstraction] [--points-to]
//                  [--emit-certs=FILE] [--check-certs]
//                  [--check-only --certs=FILE] CLIENT.cj
//
// Reads an Easl component specification (a built-in one by default),
// generates a certifier for the chosen engine, and certifies the CJ
// client program. With --emit-certs the proven verdicts' proof-carrying
// certificates are serialized to FILE; with --check-certs the
// supervisor re-validates every certificate with the independent
// checker before accepting the rung's verdicts.
//
// --points-to runs the whole-program points-to & escape pre-analysis
// before the SCMPIntra engine: the report gains the points-to/escape
// statistics and per-method slice summaries (including why slicing was
// forced off), obligations of methods unreachable from main() are
// discharged as unreachable, and under --emit-certs multi-slice
// methods are certified per-slice behind a SlicePartition certificate.
//
// --check-only skips the analyzer entirely: it re-derives the trusted
// inputs (spec, abstraction, client CFG) and runs only cert::Checker
// over a previously emitted certificate file — the independent
// re-verification path of a proof-carrying report.
//
// Exits 0 when every check is verified (or, under --check-only, every
// certificate validates), 1 when any check is flagged, 2 on usage or
// parse errors, 3 when a certificate is rejected.
//
//===----------------------------------------------------------------------===//

#include "cert/Checker.h"
#include "client/CFG.h"
#include "client/Parser.h"
#include "core/Certifier.h"
#include "easl/Builtins.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace canvas;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool readBinaryFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeBinaryFile(const std::string &Path,
                     const std::vector<uint8_t> &Data) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return Out.good();
}

int usage() {
  std::fprintf(stderr,
               "usage: canvas_certify [--engine=scmp-intra|scmp-interproc|"
               "tvla-independent|tvla-relational|generic-allocsite]\n"
               "                      [--spec=FILE|cmp|grp|imp|aop]\n"
               "                      [--print-abstraction] [--points-to]\n"
               "                      [--emit-certs=FILE] [--check-certs]\n"
               "                      [--check-only --certs=FILE] CLIENT.cj\n");
  return 2;
}

/// The --check-only path: no analyzer is instantiated. The trusted
/// inputs are rebuilt from source (spec parse, abstraction derivation,
/// client CFG construction) and every certificate in the file must be
/// accepted by the independent single-pass checker.
int checkOnly(const std::string &SpecSource, const std::string &ClientSource,
              const std::string &CertsPath) {
  DiagnosticEngine Diags;
  easl::Spec Spec = easl::parseSpec(SpecSource, Diags);
  wp::DerivedAbstraction Abs = wp::deriveAbstraction(Spec, Diags);
  cj::Program P = cj::parseProgram(ClientSource, Diags);
  cj::ClientCFG CFG = cj::buildCFG(P, Spec, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }

  std::vector<uint8_t> Blob;
  if (!readBinaryFile(CertsPath, Blob)) {
    std::fprintf(stderr, "error: cannot read certificates '%s'\n",
                 CertsPath.c_str());
    return 2;
  }
  std::vector<cert::Certificate> Certs;
  std::string Error;
  if (!cert::parseCertificates(Blob, Certs, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 3;
  }

  cert::Checker Checker(Spec, Abs, CFG);
  size_t Claims = 0;
  double Micros = 0;
  for (const cert::Certificate &C : Certs) {
    cert::CheckResult CR = Checker.check(C);
    Micros += CR.Micros;
    if (!CR.Valid) {
      std::fprintf(stderr, "certificate rejected: %s\n", CR.Reason.c_str());
      return 3;
    }
    Claims += C.Claims.size();
  }
  std::printf("checked %zu certificate(s), %zu proven claim(s), "
              "%.0f us — all valid\n",
              Certs.size(), Claims, Micros);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string SpecArg = "cmp";
  std::string EngineArg = "scmp-intra";
  std::string ClientPath;
  std::string EmitCertsPath;
  std::string CertsPath;
  bool PrintAbstraction = false;
  bool PointsTo = false;
  bool CheckCerts = false;
  bool CheckOnly = false;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--engine=", 9) == 0) {
      EngineArg = Arg + 9;
    } else if (std::strncmp(Arg, "--spec=", 7) == 0) {
      SpecArg = Arg + 7;
    } else if (std::strcmp(Arg, "--print-abstraction") == 0) {
      PrintAbstraction = true;
    } else if (std::strcmp(Arg, "--points-to") == 0) {
      PointsTo = true;
    } else if (std::strncmp(Arg, "--emit-certs=", 13) == 0) {
      EmitCertsPath = Arg + 13;
    } else if (std::strcmp(Arg, "--check-certs") == 0) {
      CheckCerts = true;
    } else if (std::strcmp(Arg, "--check-only") == 0) {
      CheckOnly = true;
    } else if (std::strncmp(Arg, "--certs=", 8) == 0) {
      CertsPath = Arg + 8;
    } else if (Arg[0] == '-') {
      return usage();
    } else if (ClientPath.empty()) {
      ClientPath = Arg;
    } else {
      return usage();
    }
  }
  if (ClientPath.empty() || (CheckOnly && CertsPath.empty()))
    return usage();

  std::string SpecSource;
  if (SpecArg == "cmp")
    SpecSource = easl::cmpSpecSource();
  else if (SpecArg == "grp")
    SpecSource = easl::grpSpecSource();
  else if (SpecArg == "imp")
    SpecSource = easl::impSpecSource();
  else if (SpecArg == "aop")
    SpecSource = easl::aopSpecSource();
  else if (!readFile(SpecArg, SpecSource)) {
    std::fprintf(stderr, "error: cannot read spec '%s'\n", SpecArg.c_str());
    return 2;
  }

  std::string ClientSource;
  if (!readFile(ClientPath, ClientSource)) {
    std::fprintf(stderr, "error: cannot read client '%s'\n",
                 ClientPath.c_str());
    return 2;
  }

  if (CheckOnly)
    return checkOnly(SpecSource, ClientSource, CertsPath);

  core::EngineKind Engine;
  if (EngineArg == "scmp-intra")
    Engine = core::EngineKind::SCMPIntra;
  else if (EngineArg == "scmp-interproc")
    Engine = core::EngineKind::SCMPInterproc;
  else if (EngineArg == "tvla-independent")
    Engine = core::EngineKind::TVLAIndependent;
  else if (EngineArg == "tvla-relational")
    Engine = core::EngineKind::TVLARelational;
  else if (EngineArg == "generic-allocsite")
    Engine = core::EngineKind::GenericAllocSite;
  else
    return usage();

  core::CertifierOptions Opts;
  Opts.PointsTo = PointsTo;
  Opts.EmitCertificates = !EmitCertsPath.empty() || CheckCerts;
  Opts.CheckCertificates = CheckCerts;

  DiagnosticEngine Diags;
  core::Certifier Certifier(SpecSource, Engine, Diags, {}, Opts);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  if (PrintAbstraction)
    std::printf("%s\n", Certifier.abstraction().str().c_str());

  core::CertificationReport Report =
      Certifier.certifySource(ClientSource, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  std::printf("%s", Report.str().c_str());

  if (!EmitCertsPath.empty()) {
    std::vector<uint8_t> Blob =
        cert::serializeCertificates(Report.Certificates);
    if (!writeBinaryFile(EmitCertsPath, Blob)) {
      std::fprintf(stderr, "error: cannot write certificates '%s'\n",
                   EmitCertsPath.c_str());
      return 2;
    }
    std::printf("wrote %u certificate(s), %zu bytes (%llu/%llu entries "
                "stored after pruning) to %s\n",
                Report.CertStats.Count, Blob.size(),
                static_cast<unsigned long long>(Report.CertStats.StoredEntries),
                static_cast<unsigned long long>(Report.CertStats.RawEntries),
                EmitCertsPath.c_str());
  }
  return Report.numFlagged() ? 1 : 0;
}
