//===----------------------------------------------------------------------===//
//
// canvas_certify: command-line front end for the staged certifier.
//
//   canvas_certify [--engine=NAME] [--spec=FILE|cmp|grp|imp|aop]
//                  [--print-abstraction] CLIENT.cj
//
// Reads an Easl component specification (a built-in one by default),
// generates a certifier for the chosen engine, and certifies the CJ
// client program. Exits 0 when every check is verified, 1 when any
// check is flagged, 2 on usage or parse errors.
//
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"
#include "easl/Builtins.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace canvas;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: canvas_certify [--engine=scmp-intra|scmp-interproc|"
               "tvla-independent|tvla-relational|generic-allocsite]\n"
               "                      [--spec=FILE|cmp|grp|imp|aop]\n"
               "                      [--print-abstraction] CLIENT.cj\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string SpecArg = "cmp";
  std::string EngineArg = "scmp-intra";
  std::string ClientPath;
  bool PrintAbstraction = false;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--engine=", 9) == 0) {
      EngineArg = Arg + 9;
    } else if (std::strncmp(Arg, "--spec=", 7) == 0) {
      SpecArg = Arg + 7;
    } else if (std::strcmp(Arg, "--print-abstraction") == 0) {
      PrintAbstraction = true;
    } else if (Arg[0] == '-') {
      return usage();
    } else if (ClientPath.empty()) {
      ClientPath = Arg;
    } else {
      return usage();
    }
  }
  if (ClientPath.empty())
    return usage();

  std::string SpecSource;
  if (SpecArg == "cmp")
    SpecSource = easl::cmpSpecSource();
  else if (SpecArg == "grp")
    SpecSource = easl::grpSpecSource();
  else if (SpecArg == "imp")
    SpecSource = easl::impSpecSource();
  else if (SpecArg == "aop")
    SpecSource = easl::aopSpecSource();
  else if (!readFile(SpecArg, SpecSource)) {
    std::fprintf(stderr, "error: cannot read spec '%s'\n", SpecArg.c_str());
    return 2;
  }

  core::EngineKind Engine;
  if (EngineArg == "scmp-intra")
    Engine = core::EngineKind::SCMPIntra;
  else if (EngineArg == "scmp-interproc")
    Engine = core::EngineKind::SCMPInterproc;
  else if (EngineArg == "tvla-independent")
    Engine = core::EngineKind::TVLAIndependent;
  else if (EngineArg == "tvla-relational")
    Engine = core::EngineKind::TVLARelational;
  else if (EngineArg == "generic-allocsite")
    Engine = core::EngineKind::GenericAllocSite;
  else
    return usage();

  std::string ClientSource;
  if (!readFile(ClientPath, ClientSource)) {
    std::fprintf(stderr, "error: cannot read client '%s'\n",
                 ClientPath.c_str());
    return 2;
  }

  DiagnosticEngine Diags;
  core::Certifier Certifier(SpecSource, Engine, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  if (PrintAbstraction)
    std::printf("%s\n", Certifier.abstraction().str().c_str());

  core::CertificationReport Report =
      Certifier.certifySource(ClientSource, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  std::printf("%s", Report.str().c_str());
  return Report.numFlagged() ? 1 : 0;
}
