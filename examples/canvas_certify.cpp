//===----------------------------------------------------------------------===//
//
// canvas_certify: command-line front end for the staged certifier.
//
//   canvas_certify [--engine=NAME] [--spec=FILE|cmp|grp|imp|aop]
//                  [--print-abstraction] [--points-to]
//                  [--emit-certs=FILE] [--check-certs]
//                  [--store=DIR] [--store-mode=rw|ro]
//                  [--check-only --certs=FILE] CLIENT.cj
//   canvas_certify --list-fault-sites
//   canvas_certify --store-snapshot=DIR
//   canvas_certify --store-diff=OLDDIR,NEWDIR
//
// Reads an Easl component specification (a built-in one by default),
// generates a certifier for the chosen engine, and certifies the CJ
// client program. With --emit-certs the proven verdicts' proof-carrying
// certificates are serialized to FILE; with --check-certs the
// supervisor re-validates every certificate with the independent
// checker before accepting the rung's verdicts.
//
// --store=DIR enables the crash-safe persistent certificate store:
// unchanged methods are answered from checker-gated store entries and
// only changed methods re-run the engine. Store incidents (quarantined,
// rejected, or I/O-failed entries) go to stderr; a
// BENCH_JSON {"bench":"store-hit-rate",...} line on stdout records the
// hit/miss accounting (the capture step of the capture -> analyze ->
// diff flow). --store-mode=ro opens the store without mutating it.
//
// --store-snapshot=DIR dumps every decodable entry of a store as one
// JSON line each (sorted by unit, then input hash); --store-diff
// compares two such stores directly and prints one JSON line per
// added/removed/changed entry plus a BENCH_JSON summary, exiting 0
// when identical and 1 otherwise.
//
// --list-fault-sites prints the deterministic fault-injection registry
// (one site per line), so harnesses can iterate every probe site
// without hard-coding the list.
//
// --points-to runs the whole-program points-to & escape pre-analysis
// before the SCMPIntra engine: the report gains the points-to/escape
// statistics and per-method slice summaries (including why slicing was
// forced off), obligations of methods unreachable from main() are
// discharged as unreachable, and under --emit-certs multi-slice
// methods are certified per-slice behind a SlicePartition certificate.
//
// --check-only skips the analyzer entirely: it re-derives the trusted
// inputs (spec, abstraction, client CFG) and runs only cert::Checker
// over a previously emitted certificate file — the independent
// re-verification path of a proof-carrying report.
//
// Exits 0 when every check is verified (or, under --check-only, every
// certificate validates), 1 when any check is flagged, 2 on usage or
// parse errors, 3 when a certificate is rejected.
//
//===----------------------------------------------------------------------===//

#include "cert/Checker.h"
#include "client/CFG.h"
#include "client/Parser.h"
#include "core/Certifier.h"
#include "easl/Builtins.h"
#include "store/CertStore.h"
#include "support/Budget.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace canvas;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool readBinaryFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeBinaryFile(const std::string &Path,
                     const std::vector<uint8_t> &Data) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return Out.good();
}

int usage() {
  std::fprintf(stderr,
               "usage: canvas_certify [--engine=scmp-intra|scmp-interproc|"
               "tvla-independent|tvla-relational|generic-allocsite]\n"
               "                      [--spec=FILE|cmp|grp|imp|aop]\n"
               "                      [--print-abstraction] [--points-to]\n"
               "                      [--emit-certs=FILE] [--check-certs]\n"
               "                      [--store=DIR] [--store-mode=rw|ro]\n"
               "                      [--bench-label=NAME]\n"
               "                      [--check-only --certs=FILE] CLIENT.cj\n"
               "       canvas_certify --list-fault-sites\n"
               "       canvas_certify --store-snapshot=DIR\n"
               "       canvas_certify --store-diff=OLDDIR,NEWDIR\n");
  return 2;
}

/// Minimal JSON string escaping for the snapshot/diff JSONL rows (unit
/// names and store paths only contain identifier characters, but a
/// hostile store could hold anything).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  return Out;
}

std::string hex64(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

unsigned numFlagged(const store::StoreEntry &E) {
  unsigned N = 0;
  for (const core::CheckRecord &C : E.Checks)
    N += C.Outcome == core::CheckOutcome::Potential ||
         C.Outcome == core::CheckOutcome::Definite;
  return N;
}

/// One snapshot row per entry; shared by --store-snapshot and the diff
/// tooling so a diff row carries the same vocabulary as a capture row.
std::string entryJson(const store::StoreEntry &E) {
  return "\"unit\":\"" + jsonEscape(E.Unit) + "\",\"input_hash\":\"" +
         hex64(E.InputHash) + "\",\"engine\":\"" + jsonEscape(E.Engine) +
         "\",\"checks\":" + std::to_string(E.Checks.size()) +
         ",\"flagged\":" + std::to_string(numFlagged(E)) +
         ",\"cert_kind\":\"" + cert::certKindName(E.Cert.Kind) +
         "\",\"cert_hash\":\"" + hex64(E.CertHash) + "\"";
}

/// Opens \p Dir read-only and returns its decodable entries, or
/// nullopt after printing the error. Read-only: snapshotting must not
/// mutate the store it observes.
bool loadEntries(const std::string &Dir, std::vector<store::StoreEntry> &Out) {
  try {
    store::CertStore St(Dir, store::StoreMode::ReadOnly);
    Out = St.listEntries();
    for (const store::StoreIncident &I : St.takeIncidents())
      std::fprintf(stderr, "store: %s: %s: %s\n", I.Kind.c_str(),
                   I.Unit.empty() ? "<store>" : I.Unit.c_str(),
                   I.Detail.c_str());
    return true;
  } catch (const CertifyError &E) {
    std::fprintf(stderr, "error: cannot open store '%s': %s\n", Dir.c_str(),
                 E.message().c_str());
    return false;
  }
}

int snapshotStore(const std::string &Dir) {
  std::vector<store::StoreEntry> Entries;
  if (!loadEntries(Dir, Entries))
    return 2;
  for (const store::StoreEntry &E : Entries)
    std::printf("{%s}\n", entryJson(E).c_str());
  return 0;
}

/// Compares two stores entry-by-entry, keyed (unit, input hash): an
/// entry only in OLD was invalidated or quarantined, one only in NEW
/// was re-certified under changed inputs, and a key present in both
/// with a different certificate hash changed evidence without changing
/// inputs (engine nondeterminism or tampering — worth surfacing).
int diffStores(const std::string &OldDir, const std::string &NewDir) {
  std::vector<store::StoreEntry> OldE, NewE;
  if (!loadEntries(OldDir, OldE) || !loadEntries(NewDir, NewE))
    return 2;
  std::map<std::pair<std::string, uint64_t>, const store::StoreEntry *> Old,
      New;
  for (const store::StoreEntry &E : OldE)
    Old[{E.Unit, E.InputHash}] = &E;
  for (const store::StoreEntry &E : NewE)
    New[{E.Unit, E.InputHash}] = &E;
  unsigned Added = 0, Removed = 0, Changed = 0, Unchanged = 0;
  for (const auto &[Key, E] : Old)
    if (!New.count(Key)) {
      ++Removed;
      std::printf("{\"diff\":\"removed\",%s}\n", entryJson(*E).c_str());
    }
  for (const auto &[Key, E] : New) {
    auto It = Old.find(Key);
    if (It == Old.end()) {
      ++Added;
      std::printf("{\"diff\":\"added\",%s}\n", entryJson(*E).c_str());
    } else if (It->second->CertHash != E->CertHash) {
      ++Changed;
      std::printf("{\"diff\":\"changed\",%s,\"old_cert_hash\":\"%s\"}\n",
                  entryJson(*E).c_str(), hex64(It->second->CertHash).c_str());
    } else {
      ++Unchanged;
    }
  }
  std::printf("\nBENCH_JSON {\"bench\":\"store-diff\",\"added\":%u,"
              "\"removed\":%u,\"changed\":%u,\"unchanged\":%u}\n\n",
              Added, Removed, Changed, Unchanged);
  return Added || Removed || Changed ? 1 : 0;
}

/// The --check-only path: no analyzer is instantiated. The trusted
/// inputs are rebuilt from source (spec parse, abstraction derivation,
/// client CFG construction) and every certificate in the file must be
/// accepted by the independent single-pass checker.
int checkOnly(const std::string &SpecSource, const std::string &ClientSource,
              const std::string &CertsPath) {
  DiagnosticEngine Diags;
  easl::Spec Spec = easl::parseSpec(SpecSource, Diags);
  wp::DerivedAbstraction Abs = wp::deriveAbstraction(Spec, Diags);
  cj::Program P = cj::parseProgram(ClientSource, Diags);
  cj::ClientCFG CFG = cj::buildCFG(P, Spec, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }

  std::vector<uint8_t> Blob;
  if (!readBinaryFile(CertsPath, Blob)) {
    std::fprintf(stderr, "error: cannot read certificates '%s'\n",
                 CertsPath.c_str());
    return 2;
  }
  std::vector<cert::Certificate> Certs;
  std::string Error;
  if (!cert::parseCertificates(Blob, Certs, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 3;
  }

  cert::Checker Checker(Spec, Abs, CFG);
  size_t Claims = 0;
  double Micros = 0;
  for (const cert::Certificate &C : Certs) {
    cert::CheckResult CR = Checker.check(C);
    Micros += CR.Micros;
    if (!CR.Valid) {
      std::fprintf(stderr, "certificate rejected: %s\n", CR.Reason.c_str());
      return 3;
    }
    Claims += C.Claims.size();
  }
  std::printf("checked %zu certificate(s), %zu proven claim(s), "
              "%.0f us — all valid\n",
              Certs.size(), Claims, Micros);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string SpecArg = "cmp";
  std::string EngineArg = "scmp-intra";
  std::string ClientPath;
  std::string EmitCertsPath;
  std::string CertsPath;
  std::string StorePath;
  std::string StoreModeArg = "rw";
  std::string SnapshotDir;
  std::string DiffArg;
  std::string BenchLabel;
  bool PrintAbstraction = false;
  bool PointsTo = false;
  bool CheckCerts = false;
  bool CheckOnly = false;
  bool ListFaultSites = false;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--engine=", 9) == 0) {
      EngineArg = Arg + 9;
    } else if (std::strncmp(Arg, "--spec=", 7) == 0) {
      SpecArg = Arg + 7;
    } else if (std::strcmp(Arg, "--print-abstraction") == 0) {
      PrintAbstraction = true;
    } else if (std::strcmp(Arg, "--points-to") == 0) {
      PointsTo = true;
    } else if (std::strncmp(Arg, "--emit-certs=", 13) == 0) {
      EmitCertsPath = Arg + 13;
    } else if (std::strcmp(Arg, "--check-certs") == 0) {
      CheckCerts = true;
    } else if (std::strcmp(Arg, "--check-only") == 0) {
      CheckOnly = true;
    } else if (std::strncmp(Arg, "--certs=", 8) == 0) {
      CertsPath = Arg + 8;
    } else if (std::strncmp(Arg, "--store=", 8) == 0) {
      StorePath = Arg + 8;
    } else if (std::strncmp(Arg, "--store-mode=", 13) == 0) {
      StoreModeArg = Arg + 13;
    } else if (std::strncmp(Arg, "--store-snapshot=", 17) == 0) {
      SnapshotDir = Arg + 17;
    } else if (std::strncmp(Arg, "--store-diff=", 13) == 0) {
      DiffArg = Arg + 13;
    } else if (std::strncmp(Arg, "--bench-label=", 14) == 0) {
      BenchLabel = Arg + 14;
    } else if (std::strcmp(Arg, "--list-fault-sites") == 0) {
      ListFaultSites = true;
    } else if (Arg[0] == '-') {
      return usage();
    } else if (ClientPath.empty()) {
      ClientPath = Arg;
    } else {
      return usage();
    }
  }

  if (ListFaultSites) {
    for (const std::string &Site : support::faultSites())
      std::printf("%s\n", Site.c_str());
    return 0;
  }
  if (!SnapshotDir.empty())
    return snapshotStore(SnapshotDir);
  if (!DiffArg.empty()) {
    const size_t Comma = DiffArg.find(',');
    if (Comma == std::string::npos)
      return usage();
    return diffStores(DiffArg.substr(0, Comma), DiffArg.substr(Comma + 1));
  }
  if (StoreModeArg != "rw" && StoreModeArg != "ro")
    return usage();
  if (ClientPath.empty() || (CheckOnly && CertsPath.empty()))
    return usage();

  std::string SpecSource;
  if (SpecArg == "cmp")
    SpecSource = easl::cmpSpecSource();
  else if (SpecArg == "grp")
    SpecSource = easl::grpSpecSource();
  else if (SpecArg == "imp")
    SpecSource = easl::impSpecSource();
  else if (SpecArg == "aop")
    SpecSource = easl::aopSpecSource();
  else if (!readFile(SpecArg, SpecSource)) {
    std::fprintf(stderr, "error: cannot read spec '%s'\n", SpecArg.c_str());
    return 2;
  }

  std::string ClientSource;
  if (!readFile(ClientPath, ClientSource)) {
    std::fprintf(stderr, "error: cannot read client '%s'\n",
                 ClientPath.c_str());
    return 2;
  }

  if (CheckOnly)
    return checkOnly(SpecSource, ClientSource, CertsPath);

  core::EngineKind Engine;
  if (EngineArg == "scmp-intra")
    Engine = core::EngineKind::SCMPIntra;
  else if (EngineArg == "scmp-interproc")
    Engine = core::EngineKind::SCMPInterproc;
  else if (EngineArg == "tvla-independent")
    Engine = core::EngineKind::TVLAIndependent;
  else if (EngineArg == "tvla-relational")
    Engine = core::EngineKind::TVLARelational;
  else if (EngineArg == "generic-allocsite")
    Engine = core::EngineKind::GenericAllocSite;
  else
    return usage();

  core::CertifierOptions Opts;
  Opts.PointsTo = PointsTo;
  Opts.EmitCertificates = !EmitCertsPath.empty() || CheckCerts;
  Opts.CheckCertificates = CheckCerts;
  Opts.StorePath = StorePath;
  Opts.StoreMode = StoreModeArg == "ro" ? store::StoreMode::ReadOnly
                                        : store::StoreMode::ReadWrite;

  DiagnosticEngine Diags;
  core::Certifier Certifier(SpecSource, Engine, Diags, {}, Opts);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  if (PrintAbstraction)
    std::printf("%s\n", Certifier.abstraction().str().c_str());

  core::CertificationReport Report =
      Certifier.certifySource(ClientSource, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  std::printf("%s", Report.str().c_str());

  // Store accounting stays out of the report (so a warm re-run's report
  // is byte-identical to the cold run's): incidents go to stderr, the
  // hit-rate line rides the BENCH_JSON capture idiom on stdout.
  if (Report.Store.Enabled) {
    for (const store::StoreIncident &I : Report.Store.Incidents)
      std::fprintf(stderr, "store: %s: %s: %s\n", I.Kind.c_str(),
                   I.Unit.empty() ? "<store>" : I.Unit.c_str(),
                   I.Detail.c_str());
    // "corpus" names the workload stably across runs — the store path
    // is usually a throwaway tmp dir, useless for joining bench lines.
    std::printf("\nBENCH_JSON {\"bench\":\"store-hit-rate\",\"corpus\":\"%s\","
                "\"path\":\"%s\","
                "\"mode\":\"%s\",\"hits\":%u,\"misses\":%u,\"rejected\":%u,"
                "\"quarantined\":%u,\"writes\":%u}\n\n",
                jsonEscape(BenchLabel.empty() ? ClientPath : BenchLabel)
                    .c_str(),
                jsonEscape(Report.Store.Path).c_str(),
                Report.Store.ReadOnly ? "ro" : "rw", Report.Store.Hits,
                Report.Store.Misses, Report.Store.Rejected,
                Report.Store.Quarantined, Report.Store.Writes);
  }

  if (!EmitCertsPath.empty()) {
    std::vector<uint8_t> Blob =
        cert::serializeCertificates(Report.Certificates);
    if (!writeBinaryFile(EmitCertsPath, Blob)) {
      std::fprintf(stderr, "error: cannot write certificates '%s'\n",
                   EmitCertsPath.c_str());
      return 2;
    }
    std::printf("wrote %u certificate(s), %zu bytes (%llu/%llu entries "
                "stored after pruning) to %s\n",
                Report.CertStats.Count, Blob.size(),
                static_cast<unsigned long long>(Report.CertStats.StoredEntries),
                static_cast<unsigned long long>(Report.CertStats.RawEntries),
                EmitCertsPath.c_str());
  }
  return Report.numFlagged() ? 1 : 0;
}
