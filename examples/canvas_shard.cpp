//===----------------------------------------------------------------------===//
//
// canvas_shard: multi-process certification of a corpus of CJ clients.
//
//   Generate a synthetic corpus (deterministic in the seed):
//     canvas_shard --generate=DIR --count=200 [--seed=7]
//
//   Certify a corpus across N worker processes:
//     canvas_shard --corpus=DIR --shards=4 [--out=FILE] [--no-stream]
//                  [--spec=cmp|grp|imp|aop|FILE] [--engine=NAME]
//                  [--points-to] [--store=DIR] [--store-mode=rw|ro]
//                  [--budget-*=N] [--bench-label=NAME]
//
//   Serial reference (same merged report, one process):
//     canvas_shard --corpus=DIR --serial
//
// While running, one SHARD_JSONL line streams per method verdict record
// (plus a per-client summary line) in completion order; the merged
// report — byte-identical at every shard count, and to --serial — goes
// to --out (default: stdout after the run). Worker processes are this
// same binary re-executed with --worker.
//
// Exit codes: 0 run completed, 2 bad usage/configuration, 3 driver
// failure (spawn failure, respawn budget exhausted, protocol violation).
//
//===----------------------------------------------------------------------===//

#include "easl/Parser.h"
#include "shard/Corpus.h"
#include "shard/Driver.h"
#include "shard/Worker.h"
#include "support/Subprocess.h"
#include "wp/Abstraction.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace canvas;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: canvas_shard --generate=DIR --count=N [--seed=S]\n"
      "       canvas_shard --corpus=DIR [--shards=N] [--serial] [--out=FILE]\n"
      "                    [--no-stream] [--bench-label=NAME] [worker flags]\n"
      "       canvas_shard --worker [worker flags]\n"
      "worker flags: --spec=cmp|grp|imp|aop|FILE --engine=NAME --points-to\n"
      "              --store=DIR --store-mode=rw|ro --budget-deadline-us=N\n"
      "              --budget-iterations=N --budget-structures=N\n"
      "              --budget-alloc-bytes=N\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  // Worker mode first: the driver spawns us as `canvas_shard --worker
  // <flags>` and speaks the pipe protocol on stdin/stdout.
  if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
    shard::WorkerOptions WO;
    for (int I = 2; I < argc; ++I)
      if (!shard::parseWorkerFlag(argv[I], WO)) {
        std::fprintf(stderr, "canvas_shard --worker: unknown flag '%s'\n",
                     argv[I]);
        return 2;
      }
    return shard::workerMain(WO);
  }

  std::string GenerateDir, CorpusDir, OutPath, BenchLabel;
  unsigned Count = 0, Shards = 1;
  uint64_t Seed = 1;
  bool Serial = false, Stream = true;
  shard::WorkerOptions WO;

  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    auto Value = [&Arg](const char *Prefix, std::string &Out) {
      const size_t N = std::strlen(Prefix);
      if (Arg.compare(0, N, Prefix) != 0)
        return false;
      Out = Arg.substr(N);
      return true;
    };
    std::string V;
    if (Value("--generate=", GenerateDir) || Value("--corpus=", CorpusDir) ||
        Value("--out=", OutPath) || Value("--bench-label=", BenchLabel))
      continue;
    if (Value("--count=", V)) {
      Count = static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
      continue;
    }
    if (Value("--seed=", V)) {
      Seed = std::strtoull(V.c_str(), nullptr, 10);
      continue;
    }
    if (Value("--shards=", V)) {
      Shards = static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
      continue;
    }
    if (Arg == "--serial") {
      Serial = true;
      continue;
    }
    if (Arg == "--no-stream") {
      Stream = false;
      continue;
    }
    if (shard::parseWorkerFlag(Arg, WO))
      continue;
    std::fprintf(stderr, "canvas_shard: unknown flag '%s'\n", Arg.c_str());
    return usage();
  }

  std::string Error;
  if (!GenerateDir.empty()) {
    if (!Count) {
      std::fprintf(stderr, "canvas_shard: --generate needs --count=N\n");
      return 2;
    }
    if (!shard::generateCorpus(GenerateDir, Count, Seed, Error)) {
      std::fprintf(stderr, "canvas_shard: %s\n", Error.c_str());
      return 3;
    }
    std::printf("generated %u client(s) under %s (seed %llu)\n", Count,
                GenerateDir.c_str(), static_cast<unsigned long long>(Seed));
    return 0;
  }
  if (CorpusDir.empty())
    return usage();
  if (Shards < 1) {
    std::fprintf(stderr, "canvas_shard: --shards must be >= 1\n");
    return 2;
  }

  std::vector<shard::CorpusClient> Corpus;
  if (!shard::loadCorpus(CorpusDir, Corpus, Error)) {
    std::fprintf(stderr, "canvas_shard: %s\n", Error.c_str());
    return 2;
  }

  // Cost-estimate against the same spec the workers will certify with,
  // so the scheduler's bins track the real fixpoint state space.
  {
    std::string SpecSource;
    if (!shard::resolveSpec(WO.SpecArg, SpecSource, Error)) {
      std::fprintf(stderr, "canvas_shard: %s\n", Error.c_str());
      return 2;
    }
    DiagnosticEngine Diags;
    easl::Spec S = easl::parseSpec(SpecSource, Diags);
    if (!Diags.hasErrors())
      easl::checkSpec(S, Diags);
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "canvas_shard: bad spec:\n%s", Diags.str().c_str());
      return 2;
    }
    wp::DerivedAbstraction Abs = wp::deriveAbstraction(S, Diags);
    shard::estimateCosts(Corpus, S, Abs);
  }

  shard::DriverOptions DO;
  DO.Shards = Shards;
  DO.WorkerExe = support::selfExecutablePath();
  DO.Worker = WO;
  DO.Stream = Stream;
  if (DO.WorkerExe.empty() && !Serial) {
    std::fprintf(stderr, "canvas_shard: cannot resolve own executable path\n");
    return 3;
  }

  std::ostringstream Merged;
  shard::ShardRunStats Stats;
  const auto T0 = std::chrono::steady_clock::now();
  const bool Ok =
      Serial ? shard::runSerial(Corpus, DO, Merged, std::cout, Stats, Error)
             : shard::runSharded(Corpus, DO, Merged, std::cout, Stats, Error);
  const uint64_t WallMicros = static_cast<uint64_t>(
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                T0)
          .count());
  if (!Ok) {
    std::fprintf(stderr, "canvas_shard: %s\n", Error.c_str());
    return 3;
  }

  if (!OutPath.empty()) {
    std::ofstream OutF(OutPath, std::ios::binary | std::ios::trunc);
    OutF << Merged.str();
    if (!OutF) {
      std::fprintf(stderr, "canvas_shard: cannot write '%s'\n",
                   OutPath.c_str());
      return 3;
    }
  } else {
    std::cout << Merged.str();
  }

  const std::string Label = BenchLabel.empty() ? CorpusDir : BenchLabel;
  std::printf("BENCH_JSON {\"bench\":\"shard-scaling\",\"corpus\":\"%s\","
              "\"shards\":%u,\"clients\":%u,\"micros\":%llu,"
              "\"worker_micros\":%llu,\"flagged\":%u,\"parse_failed\":%u,"
              "\"degraded\":%u,\"requeues\":%u,\"crashed\":%u,"
              "\"respawns\":%u}\n",
              Label.c_str(), Serial ? 0 : Shards, Stats.Clients,
              static_cast<unsigned long long>(WallMicros),
              static_cast<unsigned long long>(Stats.WorkerMicros),
              Stats.Flagged, Stats.ParseFailed, Stats.DegradedClients,
              Stats.Requeues, Stats.CrashedClients, Stats.WorkerRespawns);
  if (!WO.StorePath.empty())
    std::printf("BENCH_JSON {\"bench\":\"shard-store\",\"corpus\":\"%s\","
                "\"shards\":%u,\"hits\":%llu,\"misses\":%llu,"
                "\"writes\":%llu,\"rejected\":%llu,\"quarantined\":%llu,"
                "\"hit_pids\":%zu}\n",
                Label.c_str(), Serial ? 0 : Shards,
                static_cast<unsigned long long>(Stats.StoreHits),
                static_cast<unsigned long long>(Stats.StoreMisses),
                static_cast<unsigned long long>(Stats.StoreWrites),
                static_cast<unsigned long long>(Stats.StoreRejected),
                static_cast<unsigned long long>(Stats.StoreQuarantined),
                Stats.HitsByPid.size());
  return 0;
}
