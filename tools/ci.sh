#!/usr/bin/env bash
#
# Local CI gate: strict (-Werror) build, sanitizer build, the full test
# suite under both, and clang-tidy over src/ when the binary is
# available. Run from anywhere; exits non-zero on the first failure.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

step() { printf '\n=== %s ===\n' "$*"; }

step "strict configure + build (-Werror)"
cmake --preset strict
cmake --build --preset strict -j "$JOBS"

step "strict test suite"
ctest --preset strict -j "$JOBS"

step "sanitize configure + build (ASan + UBSan)"
cmake --preset sanitize
cmake --build --preset sanitize -j "$JOBS"

step "sanitize test suite"
ctest --preset sanitize -j "$JOBS"

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy over src/"
  # The strict build dir carries the compilation database.
  cmake --preset strict -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 1 clang-tidy -p build-strict --quiet
else
  step "clang-tidy not found; skipping lint"
fi

step "CI gate passed"
