#!/usr/bin/env bash
#
# Local CI gate: strict (-Werror) build, sanitizer build, the full test
# suite under both, and clang-tidy over src/ when the binary is
# available. Run from anywhere; exits non-zero on the first failure.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

# Hard wall-clock ceiling per ctest invocation: a hung fixpoint loop
# must fail the gate, not wedge it.
CTEST_TIMEOUT="${CTEST_TIMEOUT:-600}"

step() { printf '\n=== %s ===\n' "$*"; }

run_ctest() { timeout "$CTEST_TIMEOUT" ctest "$@"; }

step "strict configure + build (-Werror)"
cmake --preset strict
cmake --build --preset strict -j "$JOBS"

step "strict test suite"
run_ctest --preset strict -j "$JOBS"

step "sanitize configure + build (ASan + UBSan)"
cmake --preset sanitize
cmake --build --preset sanitize -j "$JOBS"

step "sanitize test suite"
run_ctest --preset sanitize -j "$JOBS"

step "asan: tvla / boolprog / cert suites (arena + packed-word paths)"
# The arena/flat-structure representations hand out raw word buffers
# and recycle them per fixpoint visit; run the suites that exercise
# those paths (plus their reset-reuse and differential regression
# tests) as a named ASan pass so a use-after-reset or overflow in the
# packed codecs is called out here, not buried in the full suite.
run_ctest --preset sanitize -j "$JOBS" \
  -R 'Arena|StateVec|Structure|TVLA|Intraprocedural|Interprocedural|Witness|Cert|Checker|SlicePartition'

step "bench smoke: grinder tvla-relational vs committed baseline"
# Captures a fresh BENCH_tvla line set into a scratch file (default
# preset, warm min-of-N timings) and fails if the grinder client's
# tvla-relational-perf time regressed more than 2x against the newest
# line committed in BENCH_tvla.json.
BENCH_TMP="$(mktemp)"
CANVAS_BENCH_OUT="$BENCH_TMP" tools/bench_capture.sh ci-smoke
python3 - "$BENCH_TMP" <<'PYEOF'
import json, sys

def grinder_us(path):
    best = None
    for line in open(path):
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        c = d["captured"]
        if c.get("bench") != "tvla-relational-perf":
            continue
        for cl in c["clients"]:
            if cl["name"] == "grinder":
                best = cl["us"]  # Last matching line = newest capture.
    return best

base = grinder_us("BENCH_tvla.json")
new = grinder_us(sys.argv[1])
if base is None or new is None:
    sys.exit("bench smoke: missing grinder tvla-relational-perf line")
print(f"grinder tvla-relational: baseline {base:.1f}us, current {new:.1f}us")
if new > 2.0 * base:
    sys.exit(f"bench smoke FAILED: {new:.1f}us > 2x baseline {base:.1f}us")
PYEOF
rm -f "$BENCH_TMP"

step "tsan configure + build (ThreadSanitizer)"
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

step "tsan: parallel certifier, task pool, budget, and shard scheduler"
# The fan-out tests force Workers > 1 explicitly, so TSan sees real
# concurrency even on single-core runners; any data race in the shared
# CancelToken, fault-probe state, or slot merging fails the gate. The
# shard determinism tests drive the multi-process scheduler (fork+exec
# is TSan-safe; the fork-without-exec StoreContention tests are NOT in
# this regex for that reason — they run under the sanitize preset).
run_ctest --preset tsan -j "$JOBS" \
  -R 'ParallelCertifierTest|ParallelEngineTest|TaskPoolTest|BudgetTest|ShardProtocolTest|ShardDeterminismTest'

step "ubsan configure + build (UBSan only)"
cmake --preset ubsan
cmake --build --preset ubsan -j "$JOBS"

step "ubsan: certificate and engine suites"
# The certificate codecs shift and mask raw bytes and the checker
# replays engine transfer functions over untrusted payloads: run the
# cert suite plus every engine suite under UBSan alone (no ASan
# interposition), so integer/shift/bounds UB surfaces directly.
run_ctest --preset ubsan -j "$JOBS" \
  -R 'Cert|Checker|Boolprog|Intraprocedural|Interprocedural|Ifds|Solver|TVLA|Structure|Baseline|Certifier|Store|CrashRecovery|InputHash'

step "store crash-recovery suite (sanitize)"
# The persistent-store suite injects a crash (exception and torn short
# write) at every commit-protocol probe and at journal compaction, plus
# the hostile-framing fuzz corpus; run it on its own so a store
# regression is named in the CI log, not buried in the full suite.
run_ctest --preset sanitize -j "$JOBS" \
  -R 'CrashRecovery|CertStoreTest|StoreIncremental|InputHash'

step "shard: multi-process determinism vs serial (sanitize)"
# The sharded certification driver must merge to a report byte-identical
# to the serial run at every shard count. Exercise the real corpus flow
# end to end on the sanitize build: generate a corpus, take one serial
# reference, then diff 1/2/4-way sharded runs against it.
SHARD_BIN=./build-sanitize/examples/canvas_shard
SHARD_DIR="$(mktemp -d)"
"$SHARD_BIN" --generate="$SHARD_DIR/corpus" --count=32 --seed=11
"$SHARD_BIN" --corpus="$SHARD_DIR/corpus" --serial --no-stream \
  --out="$SHARD_DIR/serial.txt" >/dev/null
for n in 1 2 4; do
  "$SHARD_BIN" --corpus="$SHARD_DIR/corpus" --shards="$n" --no-stream \
    --out="$SHARD_DIR/shard$n.txt" >/dev/null
  cmp "$SHARD_DIR/serial.txt" "$SHARD_DIR/shard$n.txt"
done
rm -rf "$SHARD_DIR"

step "fault-injection pass (sanitize, every probe site)"
# Arms one environment fault per probe site and re-runs the env-fault
# smoke test: every engine must degrade gracefully, never crash. The
# site list is asked of the binary itself (--list-fault-sites reads
# support::faultSites()), so a newly added probe site is exercised here
# without editing this script.
FAULT_SITES="$(./build-sanitize/examples/canvas_certify --list-fault-sites)"
for site in $FAULT_SITES; do
  printf -- '--- CANVAS_FAULT=%s:1 ---\n' "$site"
  CANVAS_FAULT="$site:1" run_ctest --preset sanitize \
    -R RobustnessEnvFault -j "$JOBS"
done
# The write-capable store sites additionally honor torn short writes.
for site in store-commit store-recover; do
  printf -- '--- CANVAS_FAULT=%s:1:short ---\n' "$site"
  CANVAS_FAULT="$site:1:short" run_ctest --preset sanitize \
    -R RobustnessEnvFault -j "$JOBS"
done

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy over src/"
  # The strict build dir carries the compilation database.
  cmake --preset strict -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 1 clang-tidy -p build-strict --quiet
else
  step "clang-tidy not found; skipping lint"
fi

# The static analyzer gates the two trust-sensitive subsystems: the
# Stage-0 dataflow layer (points-to, escape, slicing) and the
# certificate layer (emitters + independent checker), where a latent
# null-deref or uninitialized read could silently accept a bad
# certificate.
if command -v clang >/dev/null 2>&1 &&
   clang --analyze -x c++ /dev/null -o /dev/null >/dev/null 2>&1; then
  step "clang static analyzer over src/dataflow and src/cert"
  find src/dataflow src/cert -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 1 clang --analyze --analyzer-output text \
      -std=c++20 -Isrc -Werror
else
  step "clang analyzer not found; skipping analysis"
fi

step "CI gate passed"
