#!/usr/bin/env bash
#
# Captures the TVLA benchmark lines into BENCH_tvla.json: builds the
# default preset, runs the two bench drivers that print
# "BENCH_JSON {...}" lines for the relational TVLA engine, and appends
# each line (tagged with a caller-supplied label) to the JSON-lines
# file at the repo root.
#
# Usage: tools/bench_capture.sh [label]
#   label   tag recorded with each line (default: "after"); use e.g.
#           "before" when capturing a baseline ahead of a change.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

LABEL="${1:-after}"
OUT="$ROOT/BENCH_tvla.json"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS" \
  --target bench_certification bench_scaling >/dev/null

capture() {
  # Keep only the driver's TVLA JSON payloads; drop the
  # google-benchmark tables ("--benchmark_filter=NONE" skips the
  # registered benchmarks) and the non-TVLA BENCH_JSON lines.
  "$1" --benchmark_filter=NONE 2>/dev/null |
    sed -n 's/^BENCH_JSON //p' | grep '"bench":"tvla' || true
}

{
  capture ./build/bench/bench_certification
  capture ./build/bench/bench_scaling
} | while IFS= read -r line; do
  printf '{"label":"%s","captured":%s}\n' "$LABEL" "$line"
done >>"$OUT"

echo "appended $(grep -c "\"label\":\"$LABEL\"" "$OUT") '$LABEL' line(s) to $OUT"
