#!/usr/bin/env bash
#
# Captures the TVLA benchmark lines into BENCH_tvla.json: builds the
# default preset, runs the two bench drivers that print
# "BENCH_JSON {...}" lines for the relational TVLA engine, and appends
# each line (tagged with a caller-supplied label) to the JSON-lines
# file at the repo root. Also captures the persistent certificate
# store's hit-rate lines (a cold run that fills the store followed by a
# warm run that must answer everything from it) from canvas_certify,
# and the sharded driver's shard-scaling / shard-store lines from
# canvas_shard (serial reference, 1/2/4/8-way cold runs, and a
# cold+warm store pair at 4 workers over a 200-client corpus).
#
# Usage: tools/bench_capture.sh [label]
#   label   tag recorded with each line (default: "after"); use e.g.
#           "before" when capturing a baseline ahead of a change.
#
# CANVAS_BENCH_OUT overrides the output file (tools/ci.sh points it at
# a scratch file so the bench-smoke gate never dirties the committed
# baseline).

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

LABEL="${1:-after}"
OUT="${CANVAS_BENCH_OUT:-$ROOT/BENCH_tvla.json}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS" \
  --target bench_certification bench_scaling canvas_certify \
  canvas_shard >/dev/null

capture() {
  # Keep only the driver's TVLA JSON payloads; drop the
  # google-benchmark tables ("--benchmark_filter=NONE" skips the
  # registered benchmarks) and the non-TVLA BENCH_JSON lines.
  "$1" --benchmark_filter=NONE 2>/dev/null |
    sed -n 's/^BENCH_JSON //p' | grep '"bench":"tvla' || true
}

# Store hit rate: a cold certify fills the store, the warm rerun must
# serve every unit from it. Both BENCH_JSON store-hit-rate lines are
# captured so a hit-rate regression (warm misses > 0) shows up in the
# series.
capture_store() {
  local dir client
  dir="$(mktemp -d)"
  client="$dir/client.cj"
  cat >"$client" <<'EOF'
class M {
  void main() {
    Set v = new Set();
    Iterator i = v.iterator();
    v.add();
    i.next();
  }
  void other() {
    Set w = new Set();
    Iterator j = w.iterator();
    j.next();
  }
}
EOF
  for run in cold warm; do
    ./build/examples/canvas_certify --store="$dir/store" \
      --bench-label=store-smoke "$client" 2>/dev/null |
      sed -n 's/^BENCH_JSON //p' | grep '"bench":"store' || true
  done
  rm -rf "$dir"
}

# Shard scaling: one generated corpus, a serial reference, then cold
# sharded runs at 1/2/4/8 workers, and a cold + store-warm pair at 4
# workers. The shard-scaling lines carry wall-clock micros per shard
# count; the shard-store lines record the warm pass's cross-worker hit
# distribution (hits from >= 2 worker pids, zero quarantined is the
# healthy shape).
capture_shard() {
  local dir
  dir="$(mktemp -d)"
  ./build/examples/canvas_shard --generate="$dir/corpus" --count=200 \
    --seed=7 >/dev/null
  ./build/examples/canvas_shard --corpus="$dir/corpus" --serial \
    --no-stream --bench-label=shard-200 --out="$dir/merged.txt" |
    sed -n 's/^BENCH_JSON //p' | grep '"bench":"shard' || true
  for n in 1 2 4 8; do
    ./build/examples/canvas_shard --corpus="$dir/corpus" --shards="$n" \
      --no-stream --bench-label=shard-200 --out="$dir/merged.txt" |
      sed -n 's/^BENCH_JSON //p' | grep '"bench":"shard' || true
  done
  for run in cold warm; do
    ./build/examples/canvas_shard --corpus="$dir/corpus" --shards=4 \
      --store="$dir/store" --no-stream --bench-label=shard-200-$run \
      --out="$dir/merged.txt" |
      sed -n 's/^BENCH_JSON //p' | grep '"bench":"shard' || true
  done
  rm -rf "$dir"
}

{
  capture ./build/bench/bench_certification
  capture ./build/bench/bench_scaling
  capture_store
  capture_shard
} | while IFS= read -r line; do
  printf '{"label":"%s","captured":%s}\n' "$LABEL" "$line"
done >>"$OUT"

echo "appended $(grep -c "\"label\":\"$LABEL\"" "$OUT") '$LABEL' line(s) to $OUT"
